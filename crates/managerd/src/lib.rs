//! `busbw-managerd`: an **open-system** CPU manager server.
//!
//! The paper's §4 artifact is a user-level CPU manager daemon that
//! applications connect to, publish bandwidth samples to, and take
//! block/unblock signals from. The simulator reproduces its *policies*
//! over closed batches; this crate serves the manager stack itself
//! (`busbw_core::manager` — arena/seqlock samples, protocol channel,
//! signal gates) against an **open arrival process**: clients connect
//! live, are scheduled by the real [`CpuManager`] quantum loop, and
//! depart on completion, so tail latency (p99/p999 turnaround) and
//! overload behavior become measurable.
//!
//! Design:
//!
//! * **Virtual time.** One single-threaded event loop owns a virtual
//!   µs clock and drives [`CpuManager::pump`]/[`CpuManager::sample`]/
//!   [`CpuManager::quantum`] explicitly, exactly like the deterministic
//!   test harnesses do. Client worker threads are *modeled*: progress
//!   advances between events for every client whose signal gate is open
//!   ([`busbw_core::manager::ThreadHandle::is_blocked`]), so the real
//!   gate/signal/arena code paths are exercised without parking any OS
//!   thread. A fixed seed therefore yields one byte-exact serve.
//! * **Open arrivals.** [`ArrivalProcess`] draws seeded Poisson,
//!   Pareto (heavy-tailed), or diurnal trace-driven inter-arrival gaps.
//! * **Overload admission control.** At most
//!   [`OpenConfig::queue_capacity`] clients may be live; beyond that an
//!   arrival is **shed** (counted, traced, never connected) — the open
//!   analogue of a bounded accept queue.
//! * **Overhead accounting.** Every manager operation is billed a fixed
//!   virtual cost (see [`overhead`]); the sum is reported against the
//!   paper's measured ≈4.5 % manager-overhead bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;

pub use arrivals::{ArrivalProcess, Rng64, DIURNAL_PROFILE, MIN_PARETO_ALPHA};

use busbw_core::estimator::BandwidthEstimator;
use busbw_core::manager::{AppRuntime, CpuManager, ManagerConfig, ThreadHandle};
use busbw_sim::AppId;
use busbw_trace::TraceEvent;

/// A bandwidth-oblivious estimator: every job reads as bandwidth-free, so
/// the manager's gang selection degenerates to plain width-first rotation
/// — the "Linux-like" baseline stack of the open-system figures. Contrast
/// with [`busbw_core::estimator::LatestQuantumEstimator`] and
/// [`busbw_core::estimator::QuantaWindowEstimator`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ZeroEstimator;

impl BandwidthEstimator for ZeroEstimator {
    fn record_sample(&mut self, _app: AppId, _rate: f64) {}
    fn record_quantum(&mut self, _app: AppId, _rate: f64) {}
    fn estimate(&self, _app: AppId) -> f64 {
        0.0
    }
    fn forget(&mut self, _app: AppId) {}
    fn label(&self) -> &'static str {
        "Oblivious"
    }
}

/// Modeled virtual-µs costs of manager operations. The real daemon's
/// overhead was measured at ≈4.5 % of machine time (paper §4); these
/// constants bill the virtual clock for the same bookkeeping so the
/// reported overhead is deterministic and comparable across runs.
pub mod overhead {
    /// Handshake: accept-queue check + connect message + ack.
    pub const CONNECT_US: u64 = 3;
    /// One thread registration message.
    pub const THREAD_US: u64 = 1;
    /// Rejecting an arrival at the accept queue.
    pub const SHED_US: u64 = 1;
    /// Disconnect message + list removal.
    pub const DISCONNECT_US: u64 = 2;
    /// Fixed cost of one sampling point…
    pub const SAMPLE_BASE_US: u64 = 1;
    /// …plus one arena read per running job.
    pub const SAMPLE_PER_JOB_US: u64 = 1;
    /// Fixed cost of one quantum boundary (settle + rotate + select)…
    pub const QUANTUM_BASE_US: u64 = 5;
    /// …plus per-candidate selection and signaling work.
    pub const QUANTUM_PER_JOB_US: u64 = 1;
}

/// How per-client work is drawn (seeded, uniform).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Minimum solo service time, µs.
    pub min_service_us: u64,
    /// Maximum solo service time, µs.
    pub max_service_us: u64,
    /// Maximum gang width (threads); widths are drawn in `1..=max_width`
    /// and clamped to the machine so every client *can* be scheduled.
    pub max_width: usize,
    /// Minimum per-thread bus transaction rate while running, tx/µs.
    pub min_rate: f64,
    /// Maximum per-thread bus transaction rate while running, tx/µs.
    pub max_rate: f64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        Self {
            min_service_us: 50_000,
            max_service_us: 400_000,
            max_width: 2,
            min_rate: 1.0,
            max_rate: 8.0,
        }
    }
}

/// Configuration of one open serve.
#[derive(Debug, Clone)]
pub struct OpenConfig {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Virtual horizon of the serve, µs.
    pub duration_us: u64,
    /// Seed for arrivals and client parameters.
    pub seed: u64,
    /// Bounded accept queue: maximum simultaneously live clients; beyond
    /// this, arrivals are shed.
    pub queue_capacity: usize,
    /// The manager configuration (quantum, samples per quantum, cpus).
    pub manager: ManagerConfig,
    /// Per-client work model.
    pub service: ServiceModel,
    /// Collect `ClientArrived`/`ClientShed`/`ClientDeparted` events.
    pub collect_events: bool,
}

impl Default for OpenConfig {
    fn default() -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson { rate_per_s: 20.0 },
            duration_us: 5_000_000,
            seed: 42,
            queue_capacity: 8,
            manager: ManagerConfig::default(),
            service: ServiceModel::default(),
            collect_events: false,
        }
    }
}

/// What one open serve produced.
#[derive(Debug, Clone)]
pub struct OpenOutcome {
    /// Turnaround (departure − arrival, µs) per served client, in
    /// departure order.
    pub turnarounds_us: Vec<f64>,
    /// Slowdown (turnaround ÷ solo service time) per served client,
    /// aligned with `turnarounds_us`.
    pub slowdowns: Vec<f64>,
    /// Clients the arrival process offered before the horizon.
    pub arrived: u64,
    /// Arrivals rejected by the bounded accept queue.
    pub shed: u64,
    /// Clients served to completion.
    pub served: u64,
    /// Clients still live (admitted, unfinished) at the horizon.
    pub live_at_end: u64,
    /// Modeled manager bookkeeping, virtual µs (see [`overhead`]).
    pub overhead_us: u64,
    /// Virtual duration actually served, µs.
    pub duration_us: u64,
    /// Client lifecycle events, time-ordered (empty unless
    /// [`OpenConfig::collect_events`]).
    pub events: Vec<TraceEvent>,
}

impl OpenOutcome {
    /// Modeled manager overhead as a percentage of the serve duration —
    /// compare against the paper's ≈4.5 % bound.
    pub fn overhead_pct(&self) -> f64 {
        if self.duration_us == 0 {
            0.0
        } else {
            100.0 * self.overhead_us as f64 / self.duration_us as f64
        }
    }

    /// Fraction of arrivals shed, ∈ [0, 1].
    pub fn shed_rate(&self) -> f64 {
        if self.arrived == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrived as f64
        }
    }

    /// Mean slowdown over served clients (0 when none were served).
    pub fn mean_slowdown(&self) -> f64 {
        if self.slowdowns.is_empty() {
            0.0
        } else {
            self.slowdowns.iter().sum::<f64>() / self.slowdowns.len() as f64
        }
    }
}

/// One live (admitted, unfinished) client.
struct LiveClient {
    rt: AppRuntime,
    threads: Vec<ThreadHandle>,
    arrived_at_us: u64,
    service_us: u64,
    done_us: u64,
    /// Per-thread bus transaction rate while running, tx/µs.
    rate: f64,
}

impl LiveClient {
    fn remaining_us(&self) -> u64 {
        self.service_us - self.done_us
    }

    /// Whether the client's gang may progress right now (all gates get
    /// identical signals, so the first gate speaks for the gang).
    fn runnable(&self) -> bool {
        !self.threads[0].is_blocked()
    }
}

/// Serve one open arrival process to the horizon. Deterministic in
/// `cfg.seed`: the loop is single-threaded and every source of
/// variation (arrival gaps, client widths/service/rates) is drawn from
/// the seeded generator.
pub fn serve(cfg: &OpenConfig, estimator: Box<dyn BandwidthEstimator>) -> OpenOutcome {
    assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
    assert!(
        cfg.service.min_service_us >= 1 && cfg.service.min_service_us <= cfg.service.max_service_us
    );
    let (mut mgr, handle) = CpuManager::new(cfg.manager, estimator);
    let mcfg = mgr.config();
    let update_period_us = (mcfg.quantum_us / mcfg.samples_per_quantum as u64).max(1);

    // Independent streams so the arrival schedule does not shift when
    // the client-parameter model changes.
    let mut arr_rng = Rng64::new(cfg.seed);
    let mut cli_rng = Rng64::new(cfg.seed ^ 0xC0FF_EE00_DEAD_BEEF);

    let mut now: u64 = 0;
    let mut next_arrival = cfg.arrivals.next_gap_us(0, &mut arr_rng);
    let mut next_sample = update_period_us;
    let mut next_quantum = mcfg.quantum_us;
    let horizon = cfg.duration_us;

    let mut live: Vec<LiveClient> = Vec::new();
    let mut out = OpenOutcome {
        turnarounds_us: Vec::new(),
        slowdowns: Vec::new(),
        arrived: 0,
        shed: 0,
        served: 0,
        live_at_end: 0,
        overhead_us: 0,
        duration_us: horizon,
        events: Vec::new(),
    };

    while now < horizon {
        // The next instant anything can happen: an arrival, a sampling
        // point, a quantum boundary, the earliest completion of a
        // currently runnable client, or the horizon itself.
        let next_completion = live
            .iter()
            .filter(|c| c.runnable())
            .map(|c| now + c.remaining_us())
            .min()
            .unwrap_or(u64::MAX);
        let next = next_arrival
            .min(next_sample)
            .min(next_quantum)
            .min(next_completion)
            .min(horizon);

        // Advance every runnable client through the quiet interval,
        // counting the bus transactions its threads perform.
        let dt = next - now;
        if dt > 0 {
            for c in live.iter_mut() {
                if !c.runnable() {
                    continue;
                }
                let adv = dt.min(c.remaining_us());
                if adv == 0 {
                    continue;
                }
                c.done_us += adv;
                let tx = (c.rate * adv as f64) as u64;
                for t in &c.threads {
                    t.count_transactions(tx);
                }
            }
        }
        now = next;
        if now >= horizon {
            break;
        }

        // Same-instant ordering is fixed: departures free capacity
        // before the arrival is considered, sampling reads arenas
        // before the quantum settles them.
        let mut i = 0;
        while i < live.len() {
            if live[i].done_us < live[i].service_us {
                i += 1;
                continue;
            }
            let c = live.remove(i);
            let turnaround = now - c.arrived_at_us;
            let client = c.rt.id().0;
            c.rt.disconnect();
            mgr.pump();
            out.overhead_us += overhead::DISCONNECT_US;
            out.served += 1;
            out.turnarounds_us.push(turnaround as f64);
            out.slowdowns.push(turnaround as f64 / c.service_us as f64);
            if cfg.collect_events {
                out.events.push(TraceEvent::ClientDeparted {
                    at_us: now,
                    client,
                    turnaround_us: turnaround,
                });
            }
        }

        if now == next_arrival {
            out.arrived += 1;
            // Client parameters are always drawn, admitted or not, so
            // the parameter stream stays aligned with the arrival stream
            // whatever the shed pattern.
            let width = (cli_rng.range_u64(1, cfg.service.max_width.max(1) as u64) as usize)
                .min(mcfg.num_cpus);
            let service_us =
                cli_rng.range_u64(cfg.service.min_service_us, cfg.service.max_service_us);
            let rate = cli_rng.range_f64(cfg.service.min_rate, cfg.service.max_rate);
            if live.len() >= cfg.queue_capacity {
                out.shed += 1;
                out.overhead_us += overhead::SHED_US;
                if cfg.collect_events {
                    out.events.push(TraceEvent::ClientShed {
                        at_us: now,
                        arrival: out.arrived - 1,
                        live: live.len(),
                    });
                }
            } else {
                let pending = AppRuntime::request_connect(&handle, format!("c{}", out.arrived - 1))
                    .expect("manager alive");
                mgr.pump();
                let mut rt = pending.complete().expect("manager acked");
                let mut threads = Vec::with_capacity(width);
                for _ in 0..width {
                    threads.push(rt.register_thread().expect("manager alive"));
                }
                mgr.pump();
                out.overhead_us += overhead::CONNECT_US + overhead::THREAD_US * width as u64;
                if cfg.collect_events {
                    out.events.push(TraceEvent::ClientArrived {
                        at_us: now,
                        client: rt.id().0,
                        width,
                    });
                }
                live.push(LiveClient {
                    rt,
                    threads,
                    arrived_at_us: now,
                    service_us,
                    done_us: 0,
                    rate,
                });
            }
            next_arrival = now + cfg.arrivals.next_gap_us(now, &mut arr_rng);
        }

        if now == next_sample {
            for c in live.iter_mut() {
                c.rt.publish_sample(now);
            }
            mgr.sample();
            out.overhead_us +=
                overhead::SAMPLE_BASE_US + overhead::SAMPLE_PER_JOB_US * live.len() as u64;
            next_sample += update_period_us;
        }

        if now == next_quantum {
            mgr.quantum();
            out.overhead_us +=
                overhead::QUANTUM_BASE_US + overhead::QUANTUM_PER_JOB_US * live.len() as u64;
            next_quantum += mcfg.quantum_us;
        }
    }

    out.live_at_end = live.len() as u64;
    // Unpark whatever is still live so nothing leaks a parked state.
    for c in live {
        c.rt.disconnect();
    }
    mgr.pump();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_core::estimator::{LatestQuantumEstimator, QuantaWindowEstimator};

    fn quick_cfg() -> OpenConfig {
        OpenConfig {
            arrivals: ArrivalProcess::Poisson { rate_per_s: 40.0 },
            duration_us: 2_000_000,
            seed: 42,
            queue_capacity: 6,
            collect_events: true,
            ..OpenConfig::default()
        }
    }

    fn digest(o: &OpenOutcome) -> Vec<u8> {
        let mut b = Vec::new();
        for t in &o.turnarounds_us {
            b.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        for s in &o.slowdowns {
            b.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        for v in [o.arrived, o.shed, o.served, o.live_at_end, o.overhead_us] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        let mut ev = String::new();
        for e in &o.events {
            e.write_json(&mut ev);
            ev.push('\n');
        }
        b.extend_from_slice(ev.as_bytes());
        b
    }

    #[test]
    fn serve_is_byte_deterministic_for_a_fixed_seed() {
        let cfg = quick_cfg();
        let a = serve(&cfg, Box::new(LatestQuantumEstimator::new()));
        let b = serve(&cfg, Box::new(LatestQuantumEstimator::new()));
        assert!(a.arrived > 10, "expected a busy serve, got {}", a.arrived);
        assert_eq!(digest(&a), digest(&b));
        // A different seed produces a different serve.
        let c = serve(
            &OpenConfig {
                seed: 43,
                ..quick_cfg()
            },
            Box::new(LatestQuantumEstimator::new()),
        );
        assert_ne!(digest(&a), digest(&c));
    }

    #[test]
    fn accounting_balances_arrived_against_shed_served_live() {
        for seed in [1, 7, 99] {
            let o = serve(
                &OpenConfig {
                    seed,
                    ..quick_cfg()
                },
                Box::new(QuantaWindowEstimator::new()),
            );
            assert_eq!(
                o.arrived,
                o.shed + o.served + o.live_at_end,
                "seed {seed}: {} arrived, {} shed, {} served, {} live",
                o.arrived,
                o.shed,
                o.served,
                o.live_at_end
            );
            assert_eq!(o.served as usize, o.turnarounds_us.len());
            assert_eq!(o.served as usize, o.slowdowns.len());
            for (&t, &s) in o.turnarounds_us.iter().zip(&o.slowdowns) {
                assert!(t > 0.0 && t.is_finite());
                assert!(s >= 1.0 - 1e-9, "slowdown below 1: {s}");
            }
        }
    }

    #[test]
    fn overload_sheds_and_light_load_does_not() {
        let heavy = serve(
            &OpenConfig {
                arrivals: ArrivalProcess::Poisson { rate_per_s: 400.0 },
                queue_capacity: 4,
                ..quick_cfg()
            },
            Box::new(LatestQuantumEstimator::new()),
        );
        assert!(heavy.shed > 0, "400/s into capacity 4 must shed");
        assert!(heavy.shed_rate() > 0.3, "shed rate {}", heavy.shed_rate());
        let light = serve(
            &OpenConfig {
                arrivals: ArrivalProcess::Poisson { rate_per_s: 2.0 },
                ..quick_cfg()
            },
            Box::new(LatestQuantumEstimator::new()),
        );
        assert_eq!(light.shed, 0, "2/s into capacity 6 must not shed");
        assert!(light.served > 0);
    }

    #[test]
    fn modeled_overhead_stays_under_the_paper_bound() {
        let o = serve(&quick_cfg(), Box::new(LatestQuantumEstimator::new()));
        assert!(o.overhead_us > 0);
        assert!(
            o.overhead_pct() < 4.5,
            "modeled overhead {:.3} % exceeds the paper's 4.5 % bound",
            o.overhead_pct()
        );
    }

    #[test]
    fn events_are_time_ordered_and_consistent_with_counters() {
        let o = serve(&quick_cfg(), Box::new(LatestQuantumEstimator::new()));
        let mut last = 0;
        let (mut arrived, mut shed, mut departed) = (0u64, 0u64, 0u64);
        for e in &o.events {
            assert!(e.at_us() >= last, "event stream rewound");
            last = e.at_us();
            match e {
                TraceEvent::ClientArrived { .. } => arrived += 1,
                TraceEvent::ClientShed { .. } => shed += 1,
                TraceEvent::ClientDeparted { .. } => departed += 1,
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!(arrived + shed, o.arrived);
        assert_eq!(shed, o.shed);
        assert_eq!(departed, o.served);
    }

    #[test]
    fn heavy_tailed_arrivals_serve_deterministically_too() {
        let cfg = OpenConfig {
            arrivals: ArrivalProcess::Pareto {
                rate_per_s: 30.0,
                alpha: 1.5,
            },
            ..quick_cfg()
        };
        let a = serve(&cfg, Box::new(QuantaWindowEstimator::new()));
        let b = serve(&cfg, Box::new(QuantaWindowEstimator::new()));
        assert_eq!(digest(&a), digest(&b));
        assert!(a.arrived > 0);
    }
}
