//! A small run-metrics registry: counters, gauges, histograms, and
//! timelines, snapshotted as JSON into the run manifest.
//!
//! The experiment harness records what a run *did* — ticks simulated, bus
//! Λ-solve memo hits, per-app slowdowns, the bus-utilization ρ timeline —
//! and [`MetricsRegistry::to_json`] renders one machine-readable object
//! that is embedded next to each `results/` artifact. Everything is plain
//! in-process state: no atomics, no global registry, no dependencies.

use std::collections::BTreeMap;

/// Format an `f64` as JSON (non-finite values become `null`).
fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A histogram with caller-chosen upper bucket bounds plus an implicit
/// overflow bucket, tracking count/sum/min/max alongside.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last catches everything above.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram whose bucket `i` counts samples `≤ bounds[i]` (bounds
    /// must be strictly increasing); one overflow bucket is added.
    ///
    /// # Panics
    /// Panics if `bounds` is not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples at once — how pre-bucketed data (e.g.
    /// the simulator's per-run tick-coarsening histogram) folds in without
    /// `n` individual calls.
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += n;
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (`None` before the first sample).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Deterministic fixed-bucket quantile estimate: the value below
    /// which a fraction `q` of the recorded samples fall, linearly
    /// interpolated inside the bucket that crosses the target rank and
    /// clamped to the observed `[min, max]` (so the overflow bucket and
    /// the open lower end never extrapolate past real samples).
    ///
    /// `q` is clamped to `[0, 1]`; `q == 0` reports the observed
    /// minimum and `q == 1` the observed maximum. Returns `None` before
    /// the first sample. Depends only on recorded counts, never on
    /// insertion order — identical streams give identical answers.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min);
        }
        if q == 1.0 {
            return Some(self.max);
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum;
            cum += n;
            if cum as f64 >= target {
                let upper = self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(self.max)
                    .min(self.max);
                let lower = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                }
                .min(upper);
                let frac = (target - prev as f64) / n as f64;
                return Some((lower + (upper - lower) * frac).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Per-bucket `(upper_bound, count)` pairs; the overflow bucket
    /// reports `f64::INFINITY` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"count\":");
        let _ = write!(out, "{}", self.count);
        out.push_str(",\"sum\":");
        push_f64(out, self.sum);
        out.push_str(",\"min\":");
        push_f64(out, if self.count == 0 { f64::NAN } else { self.min });
        out.push_str(",\"max\":");
        push_f64(out, if self.count == 0 { f64::NAN } else { self.max });
        out.push_str(",\"buckets\":[");
        for (i, (le, n)) in self.buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"le\":");
            push_f64(out, le); // overflow bound serializes as null
            let _ = write!(out, ",\"n\":{n}}}");
        }
        out.push_str("]}");
    }
}

/// A `(time_us, value)` series, e.g. the bus-utilization ρ timeline
/// rebuilt from `bus_solve` trace events.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    points: Vec<(u64, f64)>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point. Out-of-order times are accepted (merged worker
    /// traces are sorted upstream) but not re-sorted here.
    pub fn push(&mut self, t_us: u64, value: f64) {
        self.points.push((t_us, value));
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time-weighted mean of the series: each value holds until the next
    /// point (`None` with fewer than 2 points, where no interval exists).
    pub fn time_weighted_mean(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.saturating_sub(w[0].0) as f64;
            weighted += w[0].1 * dt;
            total += dt;
        }
        if total == 0.0 {
            None
        } else {
            Some(weighted / total)
        }
    }

    fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('[');
        for (i, &(t, v)) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{t},");
            push_f64(out, v);
            out.push(']');
        }
        out.push(']');
    }
}

/// The registry: named counters, gauges, histograms, and timelines.
///
/// ```
/// use busbw_metrics::MetricsRegistry;
/// let mut m = MetricsRegistry::new();
/// m.inc_counter("bus.memo_hits", 42);
/// m.set_gauge("app.cg.slowdown", 2.63);
/// m.histogram("tick.dt_ticks", &[1.0, 8.0, 64.0]).record(3.0);
/// m.timeline("bus.rho").push(1000, 0.97);
/// assert!(m.to_json().contains("\"bus.memo_hits\":42"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    timelines: BTreeMap<String, Timeline>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to a named monotone counter (created at 0).
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a named gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, created with `bounds` on first access
    /// (subsequent calls ignore `bounds`).
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
    }

    /// Read-only view of a histogram, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The named timeline, created empty on first access.
    pub fn timeline(&mut self, name: &str) -> &mut Timeline {
        self.timelines.entry(name.to_string()).or_default()
    }

    /// Read-only view of a timeline, if it exists.
    pub fn get_timeline(&self, name: &str) -> Option<&Timeline> {
        self.timelines.get(name)
    }

    /// Render the whole registry as one JSON object (the `metrics` field
    /// of the run manifest). Keys are sorted (BTreeMap), so the output is
    /// deterministic.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", json_quote(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_quote(k));
            push_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_quote(k));
            h.write_json(&mut out);
        }
        out.push_str("},\"timelines\":{");
        for (i, (k, t)) in self.timelines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_quote(k));
            t.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Quote a string as a JSON string literal (metric names are plain ASCII
/// identifiers, but escape control characters, quotes and backslashes
/// anyway).
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc_counter("x", 2);
        m.inc_counter("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_the_last_write() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
    }

    #[test]
    fn histogram_buckets_by_upper_bound_with_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 10.0, 11.0] {
            h.record(v);
        }
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        // ≤1: {0.5, 1.0}; ≤10: {5.0, 10.0}; overflow: {11.0}.
        assert_eq!(buckets[0].1, 2);
        assert_eq!(buckets[1].1, 2);
        assert_eq!(buckets[2].1, 1);
        assert_eq!(h.count(), 5);
        assert!((h.mean().unwrap() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn record_n_matches_n_individual_records() {
        let mut a = Histogram::new(vec![1.0, 10.0]);
        let mut b = Histogram::new(vec![1.0, 10.0]);
        for _ in 0..5 {
            a.record(3.0);
        }
        b.record_n(3.0, 5);
        b.record_n(99.0, 0); // no-op
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(
            a.buckets().collect::<Vec<_>>(),
            b.buckets().collect::<Vec<_>>()
        );
    }

    #[test]
    fn interpolated_quantiles_never_leave_the_observed_range() {
        // Regression: the tail bucket's upper bound is far above the
        // largest sample, so interpolating inside it used to report a
        // p99 past the observed maximum. The clamp pins every quantile
        // to [min, max].
        let mut h = Histogram::new(vec![100.0, 1_000.0, 100_000.0]);
        for v in [120.0, 450.0, 800.0, 1_050.0, 1_100.0] {
            h.record(v);
        }
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 <= 1_100.0, "p99 {p99} exceeds the observed max");
        assert!(p99 >= 120.0);
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((120.0..=1_100.0).contains(&v), "q{q} = {v} out of range");
        }
        assert_eq!(h.quantile(1.0), Some(1_100.0));
        assert_eq!(h.quantile(0.0), Some(120.0));
    }

    #[test]
    fn empty_histogram_mean_is_none() {
        let h = Histogram::new(vec![1.0]);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_rejected() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new(vec![1.0, 10.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.record(7.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.0), "q={q}");
        }
    }

    #[test]
    fn quantile_endpoints_report_observed_min_and_max() {
        let mut h = Histogram::new(vec![10.0, 100.0]);
        h.record(3.0);
        h.record(42.0);
        h.record(999.0); // overflow bucket
        assert_eq!(h.quantile(0.0), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(999.0));
        // Out-of-range q clamps to the endpoints.
        assert_eq!(h.quantile(-0.5), Some(3.0));
        assert_eq!(h.quantile(2.0), Some(999.0));
    }

    #[test]
    fn quantile_interpolates_and_is_monotone() {
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0, 40.0]);
        // 100 samples spread uniformly: 25 per bounded bucket.
        for i in 0..100u64 {
            h.record(0.4 * i as f64 + 0.2);
        }
        // Median lands mid-stream; fixed-bucket interpolation is only
        // bucket-accurate, so allow one bucket of slack.
        let p50 = h.quantile(0.5).unwrap();
        assert!((10.0..=30.0).contains(&p50), "p50 = {p50}");
        // Quantiles never decrease in q and never escape [min, max].
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = h.quantile(i as f64 / 20.0).unwrap();
            assert!(v >= prev, "quantile not monotone at q={}", i as f64 / 20.0);
            assert!((0.2..=39.8 + 1e-9).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn quantile_at_bucket_boundary_interpolates_exactly() {
        // Two equally-filled buckets: the target rank of the median falls
        // exactly on the shared bucket edge, so interpolation must land
        // on the boundary itself (frac = 1.0 of the first bucket), and
        // any q beyond it must move into the second bucket starting from
        // that same edge — no double-counting, no discontinuity.
        let mut h = Histogram::new(vec![10.0, 20.0]);
        h.record_n(5.0, 10); // bucket 0: (min .. 10]
        h.record_n(15.0, 10); // bucket 1: (10 .. 20]
        assert_eq!(h.quantile(0.5), Some(10.0), "median on the bucket edge");
        // Mid-bucket ranks interpolate linearly from the clamped ends:
        // q = 0.25 → rank 5 of 10 in [min = 5, 10] → 7.5,
        // q = 0.75 → rank 5 of 10 in [10, max = 15] → 12.5.
        assert_eq!(h.quantile(0.25), Some(7.5));
        assert_eq!(h.quantile(0.75), Some(12.5));
        // Just past the edge: continuous from the boundary, not from 0.
        let just_past = h.quantile(0.5 + 1e-9).unwrap();
        assert!(
            (10.0..10.1).contains(&just_past),
            "q ε past the median must leave the edge continuously: {just_past}"
        );
    }

    #[test]
    fn quantile_of_overflow_heavy_stream_stays_within_samples() {
        let mut h = Histogram::new(vec![1.0]);
        h.record_n(1e6, 1000); // everything in the overflow bucket
        assert_eq!(h.quantile(0.999), Some(1e6));
        assert_eq!(h.quantile(0.5), Some(1e6));
    }

    #[test]
    fn timeline_time_weighted_mean_holds_values() {
        let mut t = Timeline::new();
        assert_eq!(t.time_weighted_mean(), None);
        t.push(0, 1.0);
        assert_eq!(t.time_weighted_mean(), None, "one point: no interval");
        // 1.0 for 10 µs then 3.0 for 30 µs → (10 + 90) / 40 = 2.5.
        t.push(10, 3.0);
        t.push(40, 0.0);
        assert!((t.time_weighted_mean().unwrap() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_valid_json_with_all_sections() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("ticks", 7);
        m.set_gauge("rho", 0.93);
        m.set_gauge("weird", f64::NAN); // must serialize as null
        m.histogram("h", &[1.0, 2.0]).record(1.5);
        m.timeline("tl").push(5, 0.5);
        let js = m.to_json();
        let v = busbw_trace::json::parse(&js).expect("snapshot must parse");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("ticks"))
                .and_then(|x| x.as_f64()),
            Some(7.0)
        );
        assert!(v.get("gauges").and_then(|g| g.get("weird")).is_some());
        let h = v.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(|x| x.as_f64()), Some(1.0));
        let tl = v.get("timelines").and_then(|t| t.get("tl")).unwrap();
        assert_eq!(tl.as_array().map(|a| a.len()), Some(1));
    }

    #[test]
    fn empty_registry_snapshot_parses() {
        let js = MetricsRegistry::new().to_json();
        assert!(busbw_trace::json::parse(&js).is_ok());
        assert_eq!(
            js,
            r#"{"counters":{},"gauges":{},"histograms":{},"timelines":{}}"#
        );
    }
}
