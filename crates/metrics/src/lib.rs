//! Statistics and reporting for the reproduction.
//!
//! Small, dependency-light building blocks used by the experiment harness
//! and benches:
//!
//! * [`window`] — moving-window averages (the analytical companion to the
//!   Quanta Window policy, incl. the paper's window-distance criterion);
//! * [`summary`] — slowdown, turnaround, improvement-% aggregation exactly
//!   as the paper reports them (arithmetic mean over instances, improvement
//!   relative to the Linux baseline);
//! * [`table`] — fixed-width text and CSV rendering for figure tables;
//! * [`registry`] — the run-metrics registry (counters, gauges, histograms,
//!   ρ timelines) whose JSON snapshot is embedded in run manifests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod summary;
pub mod table;
pub mod window;

pub use registry::{Histogram, MetricsRegistry, Timeline};
pub use summary::{improvement_pct, mean, slowdown, ExperimentRow, FigureSummary};
pub use table::Table;
pub use window::MovingWindow;
