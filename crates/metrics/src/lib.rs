//! Statistics and reporting for the reproduction.
//!
//! Small, dependency-light building blocks used by the experiment harness
//! and benches:
//!
//! * [`window`] — moving-window averages (the analytical companion to the
//!   Quanta Window policy, incl. the paper's window-distance criterion);
//! * [`summary`] — slowdown, turnaround, improvement-% aggregation exactly
//!   as the paper reports them (arithmetic mean over instances, improvement
//!   relative to the Linux baseline);
//! * [`table`] — fixed-width text and CSV rendering for figure tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod summary;
pub mod table;
pub mod window;

pub use summary::{improvement_pct, mean, slowdown, ExperimentRow, FigureSummary};
pub use table::Table;
pub use window::MovingWindow;
