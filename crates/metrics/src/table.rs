//! Plain-text and CSV table rendering for the experiment harness.

use crate::summary::FigureSummary;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers, left-align text.
                if cell.parse::<f64>().is_ok() {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting needed for our content, but commas in
    /// cells are escaped by quoting anyway).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Build a table from a [`FigureSummary`]: app column plus one column
    /// per series, one decimal place.
    pub fn from_figure(fig: &FigureSummary) -> Self {
        let series = fig.series();
        let mut header = vec!["App"];
        let series_refs: Vec<&str> = series.iter().map(|s| s.as_str()).collect();
        header.extend(series_refs.iter());
        let mut t = Table::new(&header);
        for row in &fig.rows {
            let mut cells = vec![row.app.clone()];
            for s in &series {
                cells.push(
                    row.get(s)
                        .map(|v| format!("{v:.1}"))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::ExperimentRow;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["App", "Latest"]);
        t.row(vec!["Radiosity".into(), "4.0".into()]);
        t.row(vec!["CG".into(), "68.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("App"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("Radiosity"));
        assert!(lines[3].contains("68.0"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "1".into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",1\n");
    }

    #[test]
    fn from_figure_builds_all_columns() {
        let fig = FigureSummary {
            id: "f".into(),
            title: "f".into(),
            rows: vec![ExperimentRow {
                app: "CG".into(),
                values: vec![("Latest".into(), 68.0), ("Window".into(), 53.0)],
            }],
        };
        let t = Table::from_figure(&fig);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        assert!(csv.contains("App,Latest,Window"));
        assert!(csv.contains("CG,68.0,53.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
