//! Experiment aggregation, matching the paper's reporting conventions.
//!
//! * **Slowdown** (Fig. 1B): multiprogrammed turnaround ÷ solo turnaround,
//!   averaged arithmetically over the instances of an application.
//! * **Improvement %** (Fig. 2): the percentage reduction of the mean
//!   turnaround time under a policy relative to the Linux baseline:
//!   `(T_linux − T_policy) / T_linux × 100` — positive is better, and a
//!   3× baseline slowdown fully recovered shows as ≈ 68 %, matching the
//!   paper's headline numbers.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
///
/// An empty measurement set used to panic here, which turned recoverable
/// experiment conditions (a run stopped at its hard cap before any app
/// finished, a figure with every row filtered out) into crashes deep in
/// aggregation. Callers now decide how to report "no data".
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Slowdown of a multiprogrammed run relative to solo execution.
pub fn slowdown(multi_us: f64, solo_us: f64) -> f64 {
    assert!(solo_us > 0.0, "solo time must be positive");
    multi_us / solo_us
}

/// The paper's Figure-2 metric: % improvement of average turnaround time
/// under `policy_us` versus `baseline_us`.
pub fn improvement_pct(baseline_us: f64, policy_us: f64) -> f64 {
    assert!(baseline_us > 0.0, "baseline time must be positive");
    (baseline_us - policy_us) / baseline_us * 100.0
}

/// One application's row in a figure: the value per configuration/policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Application name (x-axis label).
    pub app: String,
    /// (series label, value) pairs, e.g. `("Latest", 41.0)`.
    pub values: Vec<(String, f64)>,
}

impl ExperimentRow {
    /// Value for a series label, if present.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(s, _)| s == series)
            .map(|&(_, v)| v)
    }
}

/// A whole figure: rows per application plus derived aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureSummary {
    /// Figure identifier (e.g. `"fig2a"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rows in x-axis order.
    pub rows: Vec<ExperimentRow>,
}

impl FigureSummary {
    /// Series labels present in the first row (assumed uniform).
    pub fn series(&self) -> Vec<String> {
        self.rows
            .first()
            .map(|r| r.values.iter().map(|(s, _)| s.clone()).collect())
            .unwrap_or_default()
    }

    /// Mean of a series across rows (the paper's "in average" numbers).
    pub fn series_mean(&self, series: &str) -> Option<f64> {
        let vals: Vec<f64> = self.rows.iter().filter_map(|r| r.get(series)).collect();
        mean(&vals)
    }

    /// Max of a series across rows (the paper's "up to" numbers).
    pub fn series_max(&self, series: &str) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.get(series))
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Min of a series across rows.
    pub fn series_min(&self, series: &str) -> Option<f64> {
        self.rows
            .iter()
            .filter_map(|r| r.get(series))
            .min_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_matches_paper_arithmetic() {
        // Baseline 3× slower fully recovered: (3−1)/3 ≈ 66.7 %.
        let x = improvement_pct(3.0, 1.0);
        assert!((x - 66.6667).abs() < 0.001);
        // Policy worse than baseline → negative.
        assert!(improvement_pct(1.0, 1.19) < -18.9);
        // No change → 0.
        assert_eq!(improvement_pct(5.0, 5.0), 0.0);
    }

    #[test]
    fn slowdown_is_ratio() {
        assert_eq!(slowdown(300.0, 100.0), 3.0);
        assert_eq!(slowdown(100.0, 100.0), 1.0);
    }

    #[test]
    fn figure_aggregates() {
        let fig = FigureSummary {
            id: "t".into(),
            title: "t".into(),
            rows: vec![
                ExperimentRow {
                    app: "A".into(),
                    values: vec![("Latest".into(), 10.0), ("Window".into(), 20.0)],
                },
                ExperimentRow {
                    app: "B".into(),
                    values: vec![("Latest".into(), 30.0), ("Window".into(), -4.0)],
                },
            ],
        };
        assert_eq!(
            fig.series(),
            vec!["Latest".to_string(), "Window".to_string()]
        );
        assert_eq!(fig.series_mean("Latest"), Some(20.0));
        assert_eq!(fig.series_max("Latest"), Some(30.0));
        assert_eq!(fig.series_min("Window"), Some(-4.0));
        assert_eq!(fig.series_mean("nope"), None);
        assert_eq!(fig.rows[0].get("Window"), Some(20.0));
    }

    #[test]
    fn empty_mean_is_none_not_a_panic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[4.0]), Some(4.0));
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn figure_with_no_rows_aggregates_to_none() {
        let fig = FigureSummary {
            id: "empty".into(),
            title: "empty".into(),
            rows: Vec::new(),
        };
        assert!(fig.series().is_empty());
        assert_eq!(fig.series_mean("Latest"), None);
        assert_eq!(fig.series_max("Latest"), None);
        assert_eq!(fig.series_min("Latest"), None);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        improvement_pct(0.0, 1.0);
    }
}
