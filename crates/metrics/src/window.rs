//! Moving-window averaging.
//!
//! §4 of the paper justifies the 5-sample window: it "has the property of
//! limiting the average distance between the observed transactions pattern
//! and the moving window average to 5 % for applications with irregular
//! bus bandwidth requirements". [`MovingWindow::mean_relative_distance`]
//! computes exactly that criterion so the window-length ablation
//! (`experiments -- ablate-window`) can reproduce the design choice.

/// A fixed-capacity moving window over `f64` samples.
///
/// ```
/// use busbw_metrics::MovingWindow;
/// let mut w = MovingWindow::new(3);
/// for v in [1.0, 2.0, 3.0, 4.0] { w.push(v); }
/// assert_eq!(w.mean(), Some(3.0)); // holds the last 3: [2, 3, 4]
/// ```
#[derive(Debug, Clone)]
pub struct MovingWindow {
    cap: usize,
    buf: Vec<f64>,
    /// Next write position (ring buffer).
    head: usize,
    len: usize,
}

impl MovingWindow {
    /// A window holding the last `cap` samples.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "window capacity must be at least 1");
        Self {
            cap,
            buf: vec![0.0; cap],
            head: 0,
            len: 0,
        }
    }

    /// Push a sample, evicting the oldest when full.
    pub fn push(&mut self, v: f64) {
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.cap;
        self.len = (self.len + 1).min(self.cap);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Mean of the held samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.iter().sum::<f64>() / self.len as f64)
        }
    }

    /// Iterate held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| {
            let idx = (self.head + self.cap - self.len + i) % self.cap;
            self.buf[idx]
        })
    }

    /// The paper's window-quality criterion: feed `trace` through a window
    /// of `cap` samples and return the mean of
    /// `|sample − windowed_mean| / mean(trace)` — the average relative
    /// distance between the observed pattern and the moving average.
    ///
    /// `None` for an empty trace (there is no pattern to compare against);
    /// this path used to assert, which meant a workload that produced no
    /// samples crashed the whole ablation instead of being reported.
    pub fn mean_relative_distance(cap: usize, trace: &[f64]) -> Option<f64> {
        if trace.is_empty() {
            return None;
        }
        let overall = trace.iter().sum::<f64>() / trace.len() as f64;
        if overall == 0.0 {
            return Some(0.0);
        }
        let mut w = MovingWindow::new(cap);
        let mut acc = 0.0;
        for &s in trace {
            w.push(s);
            // The window is non-empty: a sample was just pushed.
            let m = w.mean().unwrap_or(s);
            acc += (s - m).abs() / overall;
        }
        Some(acc / trace.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_oldest() {
        let mut w = MovingWindow::new(3);
        assert!(w.is_empty());
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![2.0, 3.0, 4.0]);
        assert_eq!(w.mean(), Some(3.0));
    }

    #[test]
    fn partial_window_means_partial_samples() {
        let mut w = MovingWindow::new(5);
        w.push(10.0);
        assert_eq!(w.mean(), Some(10.0));
        w.push(20.0);
        assert_eq!(w.mean(), Some(15.0));
    }

    #[test]
    fn empty_mean_is_none() {
        assert_eq!(MovingWindow::new(4).mean(), None);
    }

    #[test]
    fn constant_trace_has_zero_distance() {
        let trace = vec![7.0; 100];
        assert_eq!(MovingWindow::mean_relative_distance(5, &trace), Some(0.0));
    }

    #[test]
    fn window_one_tracks_the_trace_exactly() {
        // A window of 1 *is* the trace: distance 0 by definition.
        let trace: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        assert!(MovingWindow::mean_relative_distance(1, &trace).unwrap() < 1e-12);
    }

    #[test]
    fn wider_windows_lag_bursty_traces_more() {
        // A square wave: wider windows smooth more, so the distance to the
        // instantaneous trace grows with width.
        let trace: Vec<f64> = (0..200)
            .map(|i| if (i / 10) % 2 == 0 { 15.0 } else { 5.0 })
            .collect();
        let d1 = MovingWindow::mean_relative_distance(1, &trace).unwrap();
        let d5 = MovingWindow::mean_relative_distance(5, &trace).unwrap();
        let d15 = MovingWindow::mean_relative_distance(15, &trace).unwrap();
        assert!(d1 < d5 && d5 < d15, "{d1} {d5} {d15}");
    }

    #[test]
    fn empty_trace_distance_is_none() {
        assert_eq!(MovingWindow::mean_relative_distance(5, &[]), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        MovingWindow::new(0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The windowed mean is always inside [min, max] of held
            /// samples, and len never exceeds capacity.
            #[test]
            fn mean_bounded(cap in 1usize..10, samples in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
                let mut w = MovingWindow::new(cap);
                for &s in &samples {
                    w.push(s);
                    prop_assert!(w.len() <= cap);
                    let held: Vec<f64> = w.iter().collect();
                    let lo = held.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = held.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let m = w.mean().unwrap();
                    prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
                }
            }
        }
    }
}
