//! Property tests for the block/unblock counting gate: the §4 inversion
//! rule must hold for *any* delivery order, sequential or concurrent.

use std::sync::Arc;

use busbw_core::manager::{Signal, SignalGate};
use proptest::prelude::*;

proptest! {
    /// Sequential deliveries in any order: the gate state is a pure
    /// function of the counts, never of the order.
    #[test]
    fn gate_state_is_order_independent(signals in proptest::collection::vec(any::<bool>(), 0..64)) {
        let gate = SignalGate::new();
        let mut blocks = 0u64;
        let mut unblocks = 0u64;
        for &is_block in &signals {
            if is_block {
                gate.deliver(Signal::Block);
                blocks += 1;
            } else {
                gate.deliver(Signal::Unblock);
                unblocks += 1;
            }
            prop_assert_eq!(gate.should_block(), blocks > unblocks);
        }
        prop_assert_eq!(gate.counts(), (blocks, unblocks));
    }

    /// Concurrent delivery of a balanced multiset from several threads
    /// always leaves the gate open, and an unbalanced one leaves it in
    /// the state the counts dictate.
    #[test]
    fn concurrent_deliveries_settle_to_the_count_rule(
        pairs_per_thread in 1usize..40,
        extra_blocks in 0u64..3,
    ) {
        let gate = Arc::new(SignalGate::new());
        let mut handles = Vec::new();
        for _ in 0..3 {
            let gate = gate.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..pairs_per_thread {
                    gate.deliver(Signal::Block);
                    gate.deliver(Signal::Unblock);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..extra_blocks {
            gate.deliver(Signal::Block);
        }
        prop_assert_eq!(gate.should_block(), extra_blocks > 0);
        let (b, u) = gate.counts();
        prop_assert_eq!(b, 3 * pairs_per_thread as u64 + extra_blocks);
        prop_assert_eq!(u, 3 * pairs_per_thread as u64);
    }
}
