//! Edge cases for the policy layer: degenerate machines, dying jobs,
//! oversized gangs, and estimator plumbing end to end.

use busbw_core::estimator::EwmaEstimator;
use busbw_core::{bus_aware, latest_quantum, linux_like, quanta_window, PolicyConfig};
use busbw_sim::{
    AppDescriptor, AppId, ConstantDemand, Decision, Machine, MachineConfig, Scheduler,
    StopCondition, ThreadSpec, XEON_4WAY,
};

fn add(m: &mut Machine, name: &str, n: usize, rate: f64, work: f64) -> AppId {
    let threads = (0..n)
        .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(rate, 0.5))))
        .collect();
    m.add_app(AppDescriptor::new(name, threads))
}

fn quantum(m: &mut Machine, s: &mut dyn Scheduler) -> Decision {
    let d = s.schedule(&m.view());
    let clone = d.clone();
    m.run(
        &mut busbw_sim::testkit::Replay::new(d),
        StopCondition::At(m.now() + 200_000),
    );
    clone
}

#[test]
fn empty_machine_schedules_nothing_without_panicking() {
    let m = Machine::new(XEON_4WAY);
    for mut s in [latest_quantum(), quanta_window()] {
        let d = s.schedule(&m.view());
        assert!(d.assignments.is_empty());
        assert!(d.next_resched_in_us > 0);
    }
    let mut linux = linux_like();
    assert!(linux.schedule(&m.view()).assignments.is_empty());
}

#[test]
fn single_cpu_machine_runs_one_job_at_a_time() {
    let cfg = MachineConfig {
        num_cpus: 1,
        ..XEON_4WAY
    };
    let mut m = Machine::new(cfg);
    let a = add(&mut m, "a", 1, 1.0, f64::INFINITY);
    let b = add(&mut m, "b", 1, 1.0, f64::INFINITY);
    let mut s = quanta_window();
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..4 {
        let d = quantum(&mut m, &mut s);
        assert_eq!(d.assignments.len(), 1, "one cpu, one thread");
        seen.insert(m.view().thread(d.assignments[0].thread).unwrap().app);
    }
    assert!(seen.contains(&a) && seen.contains(&b), "rotation on 1 cpu");
}

#[test]
fn oversized_gang_never_runs_but_never_blocks_others() {
    let mut m = Machine::new(XEON_4WAY);
    let wide = add(&mut m, "wide", 6, 1.0, f64::INFINITY); // wider than machine
    let ok = add(&mut m, "ok", 2, 1.0, 500_000.0);
    let mut s = latest_quantum();
    let out = m.run(&mut s, StopCondition::AppsFinished(vec![ok]));
    assert!(out.condition_met, "narrow job finished despite wide job");
    let wide_progress = m
        .view()
        .app(wide)
        .unwrap()
        .threads
        .iter()
        .map(|&t| m.view().thread(t).unwrap().progress_us)
        .sum::<f64>();
    assert_eq!(wide_progress, 0.0, "6-wide gang cannot fit 4 cpus");
}

#[test]
fn estimator_state_is_dropped_with_the_job() {
    let mut m = Machine::new(XEON_4WAY);
    let short = add(&mut m, "short", 2, 8.0, 150_000.0);
    let _long = add(&mut m, "long", 2, 1.0, f64::INFINITY);
    let mut s = latest_quantum();
    for _ in 0..4 {
        quantum(&mut m, &mut s);
    }
    assert!(
        m.turnaround_us(short).is_some(),
        "short job should be done after 800 ms"
    );
    // One more schedule triggers the refresh that forgets the dead job.
    let _ = s.schedule(&m.view());
    assert_eq!(s.estimate(short), 0.0, "estimate must be forgotten");
}

#[test]
fn ewma_estimator_works_end_to_end_in_the_scheduler() {
    let mut m = Machine::new(XEON_4WAY);
    let a = add(&mut m, "a", 2, 6.0, f64::INFINITY);
    let mut s = bus_aware(Box::new(EwmaEstimator::matching_window(5)));
    assert_eq!(s.name(), "EWMA");
    // Drive with the real machine loop so on_sample fires.
    m.run(&mut s, StopCondition::At(1_600_000));
    let _ = s.schedule(&m.view());
    let est = s.estimate(a);
    assert!((4.0..8.5).contains(&est), "EWMA estimate {est}");
}

#[test]
fn policies_survive_every_job_finishing() {
    let mut m = Machine::new(XEON_4WAY);
    let a = add(&mut m, "a", 2, 1.0, 200_000.0);
    let b = add(&mut m, "b", 2, 1.0, 200_000.0);
    let mut s = quanta_window();
    let out = m.run(&mut s, StopCondition::AppsFinished(vec![a, b]));
    assert!(out.condition_met);
    // Machine now empty of runnable work; further scheduling is a no-op.
    let d = s.schedule(&m.view());
    assert!(d.assignments.is_empty());
}

#[test]
fn sampling_contract_matches_paper_two_per_quantum() {
    let cfg = PolicyConfig::default();
    assert_eq!(cfg.quantum_us, 200_000);
    assert_eq!(cfg.samples_per_quantum, 2);
    assert_eq!(latest_quantum().quantum_us(), cfg.quantum_us);
    let mut m = Machine::new(XEON_4WAY);
    add(&mut m, "a", 2, 2.0, f64::INFINITY);
    let mut s = latest_quantum();
    let out = m.run(&mut s, StopCondition::At(2_000_000));
    // 2 samples per 200 ms over 2 s ≈ 20 (±boundary effects).
    assert!(
        (16..=22).contains(&(out.stats.sample_calls as i64)),
        "sample calls {}",
        out.stats.sample_calls
    );
}
