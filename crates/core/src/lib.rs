//! Bus-bandwidth-aware scheduling for SMPs — the primary contribution of
//! the ICPP 2003 paper, plus its baseline and supporting machinery.
//!
//! Two policies (§4):
//!
//! * **Latest Quantum** ([`LatestQuantumEstimator`]) — drives scheduling
//!   with each job's bus-transaction rate per thread measured over the
//!   most recent quantum it ran.
//! * **Quanta Window** ([`QuantaWindowEstimator`]) — the same, but over a
//!   moving window of the last 5 counter samples, trading responsiveness
//!   for robustness to bursts.
//!
//! Both run inside [`BusAwareScheduler`], a gang-like quantum scheduler:
//! an application is given processors only if all of its threads fit; the
//! job at the head of a circular list is always admitted (no starvation);
//! remaining processors are filled by repeatedly picking the job with the
//! highest [`fitness`] — the proximity between the job's bandwidth/thread
//! and the still-available bus bandwidth per unallocated processor.
//!
//! The baseline is [`LinuxLikeScheduler`], a time-sharing scheduler with
//! dynamic time slices, epochs, and cache-affinity bias modeled on the
//! Linux 2.4 scheduler the paper compares against. [`oracle`] has further
//! comparators (random gang, round-robin gang, greedy) for ablations.
//!
//! [`manager`] reproduces the paper's **user-level CPU manager** as real
//! concurrent code: connection protocol, shared arena, block/unblock
//! signals with the inversion-tolerant counting rule — usable with real OS
//! threads, and unit-tested including signal reordering.
//!
//! [`fitness`]: fitness::fitness

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod fitness;
pub mod linux;
pub mod linux26;
pub mod manager;
pub mod model;
pub mod oracle;
pub mod reconstruct;
pub mod sched;
pub mod selection;

pub use estimator::{
    BandwidthEstimator, EwmaEstimator, LatestQuantumEstimator, QuantaWindowEstimator,
};
pub use fitness::{available_bbw_per_proc, fitness};
pub use linux::{LinuxConfig, LinuxLikeScheduler};
pub use linux26::{LinuxO1Scheduler, O1Config};
pub use model::{predict_set_value, ModelDrivenScheduler};
pub use reconstruct::{DemandTracker, Reconstruction};
pub use sched::{BusAwareScheduler, PolicyConfig};
pub use selection::{select_gangs, select_gangs_report, Admission, Candidate};

/// Convenience: the 'Latest Quantum' policy as a ready-to-run scheduler.
pub fn latest_quantum() -> BusAwareScheduler {
    BusAwareScheduler::new(Box::new(LatestQuantumEstimator::new()))
}

/// Convenience: the 'Quanta Window' policy (5-sample window) as a
/// ready-to-run scheduler.
pub fn quanta_window() -> BusAwareScheduler {
    BusAwareScheduler::new(Box::new(QuantaWindowEstimator::new()))
}
