//! Bus-bandwidth-aware scheduling for SMPs — the primary contribution of
//! the ICPP 2003 paper, plus its baseline and supporting machinery.
//!
//! Two policies (§4):
//!
//! * **Latest Quantum** ([`LatestQuantumEstimator`]) — drives scheduling
//!   with each job's bus-transaction rate per thread measured over the
//!   most recent quantum it ran.
//! * **Quanta Window** ([`QuantaWindowEstimator`]) — the same, but over a
//!   moving window of the last 5 counter samples, trading responsiveness
//!   for robustness to bursts.
//!
//! Every scheduler here is a [`pipeline::PolicyStack`]: a composition of
//! four stages — *estimate* (measure each job's bandwidth), *admit*
//! (unconditional admissions, e.g. the paper's head-of-list rule), *select*
//! (fill the remaining processors, e.g. by [`fitness`]), and *place* (map
//! gangs onto cpus). The paper policies compose
//! [`pipeline::ReconstructingEstimator`] + [`pipeline::HeadOfList`] +
//! [`pipeline::FitnessSelector`] + [`pipeline::PackedPlacer`] via
//! [`bus_aware`]: an application is given processors only if all of its
//! threads fit; the job at the head of a circular list is always admitted
//! (no starvation); remaining processors are filled by repeatedly picking
//! the job with the highest [`fitness`] — the proximity between the job's
//! bandwidth/thread and the still-available bus bandwidth per unallocated
//! processor.
//!
//! The baseline is [`linux_like`], a time-sharing scheduler with dynamic
//! time slices, epochs, and cache-affinity bias modeled on the Linux 2.4
//! scheduler the paper compares against ([`linux26::linux_o1`] models the
//! newer O(1) scheduler). [`oracle`] has further comparators (random gang,
//! round-robin gang, greedy) for ablations — all presets over the same
//! stages, so any estimator/admission/selector/placer combination can
//! also be composed directly — plus [`oracle::offline_optimal`], a
//! branch-and-bound search for the clairvoyant-optimal gang schedule on
//! small instances, against which every preset can be scored by regret.
//!
//! [`manager`] reproduces the paper's **user-level CPU manager** as real
//! concurrent code: connection protocol, shared arena, block/unblock
//! signals with the inversion-tolerant counting rule — usable with real OS
//! threads, and unit-tested including signal reordering.
//!
//! [`fitness`]: fitness::fitness

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod fitness;
pub mod linux;
pub mod linux26;
pub mod manager;
pub mod model;
pub mod oracle;
pub mod pipeline;
pub mod reconstruct;
pub mod sched;
pub mod selection;

pub use estimator::{
    BandwidthEstimator, EwmaEstimator, LatestQuantumEstimator, QuantaWindowEstimator,
};
pub use fitness::{available_bbw_per_proc, fitness};
pub use linux::{linux_like, linux_like_with_config, LinuxConfig, LinuxEpochSelector};
pub use linux26::{linux_o1, linux_o1_with_config, LinuxO1Selector, O1Config};
pub use model::{predict_set_value, ModelDrivenScheduler};
pub use oracle::{
    brute_force_optimal, greedy_pack, offline_optimal, random_gang, round_robin_gang,
    round_robin_gang_with_quantum, simulate as oracle_simulate, BranchState, FixedPlanScheduler,
    GangState, OracleReport, OracleSearchConfig, RecordingScheduler, SimNode, ThreadSlot,
    ORACLE_IDLE_SENTINEL_US,
};
pub use pipeline::{PolicyStack, SoloSelector};
pub use reconstruct::{DemandTracker, Reconstruction};
pub use sched::{bus_aware, bus_aware_with_config, PolicyConfig};
pub use selection::{select_gangs, select_gangs_report, Admission, Candidate};

/// Convenience: the 'Latest Quantum' policy as a ready-to-run scheduler.
pub fn latest_quantum() -> PolicyStack {
    bus_aware(Box::new(LatestQuantumEstimator::new()))
}

/// Convenience: the 'Quanta Window' policy (5-sample window) as a
/// ready-to-run scheduler.
pub fn quanta_window() -> PolicyStack {
    bus_aware(Box::new(QuantaWindowEstimator::new()))
}
