//! The fitness metric — Equations (1) and (2) of the paper.
//!
//! ```text
//! Fitness = 1000 / (1 + |ABBW/proc − BBW/thread|)          (1)
//! ```
//!
//! `ABBW/proc` is the *available bus bandwidth per unallocated processor*:
//! total bus bandwidth, minus the requirements of already-allocated
//! applications, divided by the number of processors still free. The
//! closer a candidate's per-thread bandwidth is to it, the fitter the
//! candidate. The paper highlights one emergent property: once the bus is
//! overcommitted, `ABBW/proc` turns **negative** and the application with
//! the lowest `BBW/thread` automatically becomes the fittest.
//!
//! Equation (2) is the same expression evaluated with windowed rates; both
//! policies therefore share this function and differ only in the estimator
//! that produces `BBW/thread`.

/// Equation (1)/(2): fitness of a candidate whose per-thread bandwidth is
/// `bbw_per_thread`, given `abbw_per_proc` available per free processor.
/// Bandwidths are in bus transactions/µs (any consistent unit works).
///
/// ```
/// use busbw_core::fitness;
/// // A perfect bandwidth match scores 1000; distance decays the score.
/// assert_eq!(fitness(7.0, 7.0), 1000.0);
/// assert!(fitness(7.0, 8.0) > fitness(7.0, 20.0));
/// // Overcommitted bus (negative ABBW/proc): the lightest job wins.
/// assert!(fitness(-5.0, 0.1) > fitness(-5.0, 11.0));
/// ```
#[inline]
pub fn fitness(abbw_per_proc: f64, bbw_per_thread: f64) -> f64 {
    1000.0 / (1.0 + (abbw_per_proc - bbw_per_thread).abs())
}

/// `ABBW/proc`: remaining bus bandwidth per unallocated processor.
///
/// * `bus_total` — the system bus bandwidth (tx/µs);
/// * `allocated_bbw` — Σ of the bandwidth requirements of already-admitted
///   applications (tx/µs);
/// * `free_procs` — processors not yet allocated (must be > 0).
///
/// May be negative when the admitted set already overcommits the bus —
/// that is intentional (see module docs).
#[inline]
pub fn available_bbw_per_proc(bus_total: f64, allocated_bbw: f64, free_procs: usize) -> f64 {
    assert!(
        free_procs > 0,
        "ABBW/proc undefined with no free processors"
    );
    (bus_total - allocated_bbw) / free_procs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_scores_1000() {
        assert_eq!(fitness(7.0, 7.0), 1000.0);
    }

    #[test]
    fn fitness_decreases_with_distance_symmetrically() {
        let f0 = fitness(10.0, 10.0);
        let f1 = fitness(10.0, 12.0);
        let f2 = fitness(10.0, 8.0);
        let f3 = fitness(10.0, 20.0);
        assert!(f0 > f1);
        assert_eq!(f1, f2);
        assert!(f1 > f3);
    }

    #[test]
    fn paper_example_values() {
        // |ABBW − BBW| = 1 → 500; = 9 → 100.
        assert_eq!(fitness(5.0, 4.0), 500.0);
        assert_eq!(fitness(10.0, 1.0), 100.0);
    }

    #[test]
    fn negative_abbw_prefers_lowest_bandwidth_candidate() {
        // Bus overcommitted: ABBW/proc = −5. The lightest job wins.
        let abbw = -5.0;
        let light = fitness(abbw, 0.1);
        let heavy = fitness(abbw, 11.0);
        assert!(light > heavy);
    }

    #[test]
    fn abbw_per_proc_divides_remaining_bandwidth() {
        assert_eq!(available_bbw_per_proc(29.5, 9.5, 2), 10.0);
        // Overcommitted → negative.
        assert!(available_bbw_per_proc(29.5, 40.0, 1) < 0.0);
    }

    #[test]
    #[should_panic(expected = "no free processors")]
    fn zero_free_procs_panics() {
        available_bbw_per_proc(29.5, 0.0, 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Fitness is bounded by (0, 1000] and maximized at equality.
            #[test]
            fn bounded_and_peaked(a in -100.0f64..100.0, b in 0.0f64..100.0) {
                let f = fitness(a, b);
                prop_assert!(f > 0.0 && f <= 1000.0);
                prop_assert!(f <= fitness(a, a) + 1e-12);
            }

            /// Strictly monotone in |distance|.
            #[test]
            fn monotone_in_distance(a in -50.0f64..50.0, d1 in 0.0f64..50.0, extra in 0.001f64..50.0) {
                let d2 = d1 + extra;
                prop_assert!(fitness(a, a + d1) > fitness(a, a + d2));
                prop_assert!(fitness(a, a - d1) > fitness(a, a - d2));
            }
        }
    }
}
