//! Bandwidth estimators: what `BBW/thread` means under each policy.
//!
//! The CPU manager samples every connected application's bus-transaction
//! counters **twice per scheduling quantum** and equipartitions the
//! application's traffic among its threads. The two policies differ only
//! in how those measurements become the `BBW/thread` fed to the fitness
//! function:
//!
//! * **Latest Quantum** — the rate measured over the most recent quantum
//!   in which the job ran (the two samples of that quantum combined).
//! * **Quanta Window** — the mean of the last `W` samples (the paper uses
//!   `W = 5`, chosen so the distance between the observed transaction
//!   pattern and the moving average stays within ~5 % for irregular
//!   applications; wider windows would need exponentially decayed weights
//!   to stay responsive, §4).

use std::collections::{BTreeMap, VecDeque};

use busbw_sim::AppId;

/// Clamp a measured rate into the estimators' valid domain, or reject it.
///
/// Negative rates clamp to zero (a counter delta can only under-read).
/// Non-finite rates are dropped entirely: `rate.max(0.0)` passes `+∞`
/// through and silently maps `NaN` to `0.0` (`f64::max` ignores NaN), and
/// either would poison `Fitness = 1000/(1+|ABBW/proc − BBW/thread|)` and
/// the `total_cmp`-ordered selectors downstream, so a poisoned sample must
/// never enter the bookkeeping at all — the previous estimate stands.
fn sanitize_rate(rate: f64) -> Option<f64> {
    if rate.is_finite() {
        Some(rate.max(0.0))
    } else {
        None
    }
}

/// Turns per-sample and per-quantum bandwidth measurements into the
/// `BBW/thread` estimate used by the fitness function.
pub trait BandwidthEstimator: Send {
    /// Record one mid-quantum counter sample: `rate` is tx/µs per thread
    /// over the sample interval.
    fn record_sample(&mut self, app: AppId, rate: f64);

    /// Record a whole quantum's measurement: `rate` is tx/µs per thread
    /// over the quantum the app just ran.
    fn record_quantum(&mut self, app: AppId, rate: f64);

    /// Current `BBW/thread` estimate; `0.0` for never-measured jobs (a
    /// fresh job is optimistically assumed bandwidth-free until observed).
    fn estimate(&self, app: AppId) -> f64;

    /// Drop all state for a finished job.
    fn forget(&mut self, app: AppId);

    /// Short display name ("Latest" / "Window" in the paper's figures).
    fn label(&self) -> &'static str;
}

/// The 'Latest Quantum' policy's estimator (Equation 1).
#[derive(Debug, Default, Clone)]
pub struct LatestQuantumEstimator {
    latest: BTreeMap<AppId, f64>,
}

impl LatestQuantumEstimator {
    /// A fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl BandwidthEstimator for LatestQuantumEstimator {
    fn record_sample(&mut self, _app: AppId, _rate: f64) {
        // Latest Quantum consumes only whole-quantum measurements.
    }

    fn record_quantum(&mut self, app: AppId, rate: f64) {
        let Some(rate) = sanitize_rate(rate) else {
            return;
        };
        self.latest.insert(app, rate);
    }

    fn estimate(&self, app: AppId) -> f64 {
        self.latest.get(&app).copied().unwrap_or(0.0)
    }

    fn forget(&mut self, app: AppId) {
        self.latest.remove(&app);
    }

    fn label(&self) -> &'static str {
        "Latest"
    }
}

/// The 'Quanta Window' policy's estimator (Equation 2): a moving average
/// over the last `window` counter samples.
#[derive(Debug, Clone)]
pub struct QuantaWindowEstimator {
    window: usize,
    samples: BTreeMap<AppId, VecDeque<f64>>,
}

impl QuantaWindowEstimator {
    /// The paper's window length: 5 samples (2.5 quanta at 2 samples per
    /// quantum). Sourced from the pipeline's paper constants so every
    /// preset and default agrees on one definition.
    pub const PAPER_WINDOW: usize = crate::pipeline::PAPER_WINDOW_SAMPLES;

    /// An estimator with the paper's 5-sample window.
    pub fn new() -> Self {
        Self::with_window(Self::PAPER_WINDOW)
    }

    /// An estimator with a custom window (for the window-length ablation).
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn with_window(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1 sample");
        Self {
            window,
            samples: BTreeMap::new(),
        }
    }

    /// The configured window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Default for QuantaWindowEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthEstimator for QuantaWindowEstimator {
    fn record_sample(&mut self, app: AppId, rate: f64) {
        let Some(rate) = sanitize_rate(rate) else {
            return;
        };
        let q = self.samples.entry(app).or_default();
        q.push_back(rate);
        while q.len() > self.window {
            q.pop_front();
        }
    }

    fn record_quantum(&mut self, _app: AppId, _rate: f64) {
        // The window is built from the finer-grained samples.
    }

    fn estimate(&self, app: AppId) -> f64 {
        match self.samples.get(&app) {
            Some(q) if !q.is_empty() => q.iter().sum::<f64>() / q.len() as f64,
            _ => 0.0,
        }
    }

    fn forget(&mut self, app: AppId) {
        self.samples.remove(&app);
    }

    fn label(&self) -> &'static str {
        "Window"
    }
}

/// Exponentially-weighted moving average estimator — the technique §4
/// says a wider window "would require" to stay responsive: each new
/// sample contributes a fixed fraction `alpha`, so old samples decay
/// geometrically instead of falling off a cliff at the window edge.
///
/// `alpha = 2/(W+1)` makes the EWMA's effective memory comparable to a
/// `W`-sample rectangular window; the paper's `W = 5` corresponds to
/// `alpha ≈ 0.33`.
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    alpha: f64,
    est: BTreeMap<AppId, f64>,
}

impl EwmaEstimator {
    /// An EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            est: BTreeMap::new(),
        }
    }

    /// An EWMA whose effective memory matches a `window`-sample
    /// rectangular window (`alpha = 2/(W+1)`).
    pub fn matching_window(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        Self::new(2.0 / (window as f64 + 1.0))
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl BandwidthEstimator for EwmaEstimator {
    fn record_sample(&mut self, app: AppId, rate: f64) {
        let Some(rate) = sanitize_rate(rate) else {
            return;
        };
        let e = self.est.entry(app).or_insert(rate);
        *e += self.alpha * (rate - *e);
    }

    fn record_quantum(&mut self, _app: AppId, _rate: f64) {
        // Fed by the finer-grained samples, like the Window estimator.
    }

    fn estimate(&self, app: AppId) -> f64 {
        self.est.get(&app).copied().unwrap_or(0.0)
    }

    fn forget(&mut self, app: AppId) {
        self.est.remove(&app);
    }

    fn label(&self) -> &'static str {
        "EWMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);
    const B: AppId = AppId(2);

    #[test]
    fn latest_tracks_only_the_most_recent_quantum() {
        let mut e = LatestQuantumEstimator::new();
        assert_eq!(e.estimate(A), 0.0);
        e.record_quantum(A, 10.0);
        e.record_quantum(A, 2.0);
        assert_eq!(e.estimate(A), 2.0);
        // Samples are ignored by design.
        e.record_sample(A, 99.0);
        assert_eq!(e.estimate(A), 2.0);
    }

    #[test]
    fn latest_keeps_estimate_while_app_is_blocked() {
        // A job that does not run keeps its last measurement — the paper
        // only updates statistics "for all running jobs".
        let mut e = LatestQuantumEstimator::new();
        e.record_quantum(A, 7.5);
        e.record_quantum(B, 1.0); // other job runs; A untouched
        assert_eq!(e.estimate(A), 7.5);
    }

    #[test]
    fn window_averages_last_w_samples() {
        let mut e = QuantaWindowEstimator::with_window(3);
        for r in [1.0, 2.0, 3.0, 4.0, 5.0] {
            e.record_sample(A, r);
        }
        // Last 3: (3+4+5)/3 = 4.
        assert_eq!(e.estimate(A), 4.0);
    }

    #[test]
    fn window_smooths_bursts_latest_does_not() {
        let mut w = QuantaWindowEstimator::new();
        let mut l = LatestQuantumEstimator::new();
        // Steady 10, then one burst sample of 30.
        for _ in 0..4 {
            w.record_sample(A, 10.0);
        }
        w.record_sample(A, 30.0);
        l.record_quantum(A, 30.0);
        assert_eq!(l.estimate(A), 30.0);
        assert_eq!(w.estimate(A), 14.0); // (10·4 + 30)/5
    }

    #[test]
    fn forget_clears_per_app_state_only() {
        let mut e = QuantaWindowEstimator::new();
        e.record_sample(A, 5.0);
        e.record_sample(B, 7.0);
        e.forget(A);
        assert_eq!(e.estimate(A), 0.0);
        assert_eq!(e.estimate(B), 7.0);
    }

    #[test]
    fn negative_rates_are_clamped() {
        let mut e = QuantaWindowEstimator::new();
        e.record_sample(A, -3.0);
        assert_eq!(e.estimate(A), 0.0);
        let mut l = LatestQuantumEstimator::new();
        l.record_quantum(A, -3.0);
        assert_eq!(l.estimate(A), 0.0);
    }

    #[test]
    fn non_finite_rates_are_rejected_not_recorded() {
        // `+∞` survives `rate.max(0.0)` and NaN is silently swallowed by
        // NaN-ignoring `f64::max`; both must be dropped at the boundary so
        // the previous (finite) estimate stands.
        for poison in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut l = LatestQuantumEstimator::new();
            l.record_quantum(A, 5.0);
            l.record_quantum(A, poison);
            assert_eq!(l.estimate(A), 5.0, "Latest poisoned by {poison}");

            let mut w = QuantaWindowEstimator::with_window(3);
            w.record_sample(A, 5.0);
            w.record_sample(A, poison);
            assert_eq!(w.estimate(A), 5.0, "Window poisoned by {poison}");

            let mut e = EwmaEstimator::new(0.5);
            e.record_sample(A, 5.0);
            e.record_sample(A, poison);
            assert_eq!(e.estimate(A), 5.0, "EWMA poisoned by {poison}");
        }
    }

    #[test]
    fn non_finite_first_sample_leaves_app_unmeasured() {
        let mut l = LatestQuantumEstimator::new();
        l.record_quantum(A, f64::INFINITY);
        assert_eq!(l.estimate(A), 0.0);
        let mut w = QuantaWindowEstimator::new();
        w.record_sample(A, f64::NAN);
        assert_eq!(w.estimate(A), 0.0);
        let mut e = EwmaEstimator::new(0.3);
        e.record_sample(A, f64::INFINITY);
        assert_eq!(e.estimate(A), 0.0);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(LatestQuantumEstimator::new().label(), "Latest");
        assert_eq!(QuantaWindowEstimator::new().label(), "Window");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        QuantaWindowEstimator::with_window(0);
    }

    #[test]
    fn ewma_first_sample_initializes_exactly() {
        let mut e = EwmaEstimator::new(0.3);
        e.record_sample(A, 10.0);
        assert_eq!(e.estimate(A), 10.0);
    }

    #[test]
    fn ewma_converges_geometrically() {
        let mut e = EwmaEstimator::new(0.5);
        e.record_sample(A, 0.0);
        for _ in 0..10 {
            e.record_sample(A, 8.0);
        }
        let est = e.estimate(A);
        assert!((est - 8.0).abs() < 0.02, "est {est}");
    }

    #[test]
    fn ewma_smooths_bursts_like_a_window() {
        let mut ewma = EwmaEstimator::matching_window(5);
        let mut win = QuantaWindowEstimator::new();
        for _ in 0..4 {
            ewma.record_sample(A, 10.0);
            win.record_sample(A, 10.0);
        }
        ewma.record_sample(A, 30.0);
        win.record_sample(A, 30.0);
        // Both damp the burst; the EWMA's response is within ~2 tx/µs of
        // the rectangular window's.
        assert!((ewma.estimate(A) - win.estimate(A)).abs() < 3.0);
        assert!(ewma.estimate(A) < 20.0);
    }

    #[test]
    fn ewma_alpha_one_degenerates_to_latest_sample() {
        let mut e = EwmaEstimator::new(1.0);
        e.record_sample(A, 4.0);
        e.record_sample(A, 9.0);
        assert_eq!(e.estimate(A), 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        EwmaEstimator::new(0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The windowed estimate is always within the min/max of the
            /// recorded samples (a true average).
            /// The EWMA estimate always lies within the range of samples
            /// seen so far.
            #[test]
            fn ewma_estimate_within_sample_range(
                samples in proptest::collection::vec(0.0f64..50.0, 1..30),
                alpha in 0.05f64..1.0,
            ) {
                let mut e = EwmaEstimator::new(alpha);
                for &s in &samples {
                    e.record_sample(A, s);
                }
                let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let est = e.estimate(A);
                prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
            }

            #[test]
            fn window_estimate_within_sample_range(
                samples in proptest::collection::vec(0.0f64..50.0, 1..20),
                window in 1usize..8,
            ) {
                let mut e = QuantaWindowEstimator::with_window(window);
                for &s in &samples {
                    e.record_sample(A, s);
                }
                let tail: Vec<f64> = samples.iter().rev().take(window).copied().collect();
                let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let est = e.estimate(A);
                prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
            }
        }
    }
}
