//! The §4 job-selection algorithm, independent of any execution substrate.
//!
//! Both the simulator-driven [`crate::bus_aware`] stacks and the
//! real-thread [`crate::manager::CpuManager`] select jobs the same way;
//! this module is that shared core, so the algorithm is tested once and
//! reused everywhere.

use crate::fitness::{available_bbw_per_proc, fitness};

/// One schedulable job as seen by the selection algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate<K> {
    /// Caller's job key.
    pub key: K,
    /// Gang width: processors needed (all or nothing).
    pub width: usize,
    /// Current `BBW/thread` estimate, tx/µs.
    pub bbw_per_thread: f64,
}

/// Select jobs for one quantum.
///
/// `candidates` must be in applications-list order (head first — the job
/// with the starvation-freedom guarantee). Returns the admitted keys in
/// admission order. Exactly the paper's loop:
///
/// 1. admit the head (first candidate that fits at all);
/// 2. while processors remain, recompute `ABBW/proc` and admit the fitting
///    candidate with the highest fitness; stop when nothing fits.
///
/// ```
/// use busbw_core::{select_gangs, Candidate};
/// // A saturating head job is paired with the idle job, not the other
/// // saturating one (4 cpus, 29.5 tx/µs bus).
/// let jobs = [
///     Candidate { key: "cg-1", width: 2, bbw_per_thread: 11.65 },
///     Candidate { key: "cg-2", width: 2, bbw_per_thread: 11.65 },
///     Candidate { key: "idle", width: 2, bbw_per_thread: 0.002 },
/// ];
/// assert_eq!(select_gangs(&jobs, 4, 29.5), vec!["cg-1", "idle"]);
/// ```
pub fn select_gangs<K: Copy + PartialEq>(
    candidates: &[Candidate<K>],
    num_cpus: usize,
    bus_total: f64,
) -> Vec<K> {
    select_gangs_report(candidates, num_cpus, bus_total)
        .into_iter()
        .map(|a| a.key)
        .collect()
}

/// One admission made by [`select_gangs_report`], carrying the decision
/// inputs that produced it (trace/observability data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Admission<K> {
    /// The admitted job's key.
    pub key: K,
    /// Its gang width.
    pub width: usize,
    /// Its `BBW/thread` estimate at decision time, tx/µs.
    pub bbw_per_thread: f64,
    /// `ABBW/proc` when the admission was decided, tx/µs. `None` for the
    /// head-of-list admission, which bypasses the fitness loop.
    pub available_per_proc: Option<f64>,
    /// The winning fitness score. `None` for the head admission.
    pub fitness: Option<f64>,
}

/// [`select_gangs`], but returning each admission with the fitness score
/// and `ABBW/proc` that justified it — what a per-decision trace needs
/// to explain *why* a quantum's selection flipped.
pub fn select_gangs_report<K: Copy + PartialEq>(
    candidates: &[Candidate<K>],
    num_cpus: usize,
    bus_total: f64,
) -> Vec<Admission<K>> {
    let mut free = num_cpus;
    let mut allocated_bbw = 0.0f64;
    let mut admitted: Vec<usize> = Vec::new();
    let mut report: Vec<Admission<K>> = Vec::new();

    // Head-of-list guarantee: first job that can ever fit.
    if let Some(i) = head_position(candidates, free) {
        free -= candidates[i].width;
        allocated_bbw += candidates[i].bbw_per_thread * candidates[i].width as f64;
        admitted.push(i);
        report.push(Admission {
            key: candidates[i].key,
            width: candidates[i].width,
            bbw_per_thread: candidates[i].bbw_per_thread,
            available_per_proc: None,
            fitness: None,
        });
    }

    fitness_fill(
        candidates,
        bus_total,
        &mut free,
        &mut allocated_bbw,
        &mut admitted,
        &mut report,
    );

    report
}

/// The head-of-list admission rule: index of the first candidate that can
/// fit at all (the job carrying the starvation-freedom guarantee).
pub(crate) fn head_position<K>(candidates: &[Candidate<K>], free: usize) -> Option<usize> {
    candidates
        .iter()
        .position(|c| c.width <= free && c.width > 0)
}

/// The paper's fitness loop: while processors remain, recompute
/// `ABBW/proc` over the unallocated processors and admit the fitting
/// candidate with the highest fitness; stop when nothing fits. Appends
/// admitted indices to `admitted` and scored [`Admission`]s to `report`,
/// updating `free` and `allocated_bbw` in place so callers can seed the
/// loop with prior admissions.
pub(crate) fn fitness_fill<K: Copy + PartialEq>(
    candidates: &[Candidate<K>],
    bus_total: f64,
    free: &mut usize,
    allocated_bbw: &mut f64,
    admitted: &mut Vec<usize>,
    report: &mut Vec<Admission<K>>,
) {
    while *free > 0 {
        let abbw = available_bbw_per_proc(bus_total, *allocated_bbw, *free);
        let mut best: Option<(f64, usize)> = None;
        for (i, c) in candidates.iter().enumerate() {
            if admitted.contains(&i) || c.width == 0 || c.width > *free {
                continue;
            }
            let f = fitness(abbw, c.bbw_per_thread);
            // Strict > keeps the candidate closest to the head on ties,
            // matching a single in-order traversal of the circular list.
            if best.is_none_or(|(bf, _)| f > bf) {
                best = Some((f, i));
            }
        }
        match best {
            Some((f, i)) => {
                *free -= candidates[i].width;
                *allocated_bbw += candidates[i].bbw_per_thread * candidates[i].width as f64;
                admitted.push(i);
                report.push(Admission {
                    key: candidates[i].key,
                    width: candidates[i].width,
                    bbw_per_thread: candidates[i].bbw_per_thread,
                    available_per_proc: Some(abbw),
                    fitness: Some(f),
                });
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(key: u32, width: usize, bbw: f64) -> Candidate<u32> {
        Candidate {
            key,
            width,
            bbw_per_thread: bbw,
        }
    }

    #[test]
    fn head_is_always_admitted_first() {
        // Head is the worst fit bandwidth-wise but still goes first.
        let picked = select_gangs(
            &[cand(0, 2, 50.0), cand(1, 2, 7.0), cand(2, 2, 7.0)],
            4,
            29.5,
        );
        assert_eq!(picked[0], 0);
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn pairs_heavy_head_with_lightest_partner() {
        // Head consumes most of the bus; ABBW/proc ≈ (29.5−22)/2 ≈ 3.75;
        // the 0.0 job (|3.75|) beats the 10.0 job (|6.25|).
        let picked = select_gangs(
            &[cand(0, 2, 11.0), cand(1, 2, 10.0), cand(2, 2, 0.0)],
            4,
            29.5,
        );
        assert_eq!(picked, vec![0, 2]);
    }

    #[test]
    fn pairs_light_head_with_heaviest_partner() {
        // Reverse scenario from the paper: low-bandwidth head leaves
        // ABBW/proc ≈ 14.7/proc; the high-bandwidth job is fittest.
        let picked = select_gangs(
            &[cand(0, 2, 0.1), cand(1, 2, 1.0), cand(2, 2, 12.0)],
            4,
            29.5,
        );
        assert_eq!(picked, vec![0, 2]);
    }

    #[test]
    fn negative_abbw_selects_lowest_bandwidth() {
        // Head alone overcommits the bus: ABBW/proc < 0, so the lightest
        // candidate wins the remaining processors (paper §4).
        let picked = select_gangs(
            &[cand(0, 2, 20.0), cand(1, 2, 5.0), cand(2, 2, 0.2)],
            4,
            29.5,
        );
        assert_eq!(picked, vec![0, 2]);
    }

    #[test]
    fn gang_that_does_not_fit_is_skipped() {
        let picked = select_gangs(
            &[cand(0, 2, 1.0), cand(1, 3, 1.0), cand(2, 2, 1.0)],
            4,
            29.5,
        );
        assert_eq!(picked, vec![0, 2], "3-wide job cannot fit next to 2-wide");
    }

    #[test]
    fn oversized_head_does_not_deadlock_the_list() {
        let picked = select_gangs(&[cand(0, 8, 1.0), cand(1, 4, 1.0)], 4, 29.5);
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn empty_and_zero_width_inputs() {
        assert!(select_gangs::<u32>(&[], 4, 29.5).is_empty());
        assert!(select_gangs(&[cand(0, 0, 1.0)], 4, 29.5).is_empty());
    }

    #[test]
    fn report_matches_plain_selection_and_scores_non_head_admissions() {
        let cands = [cand(0, 2, 11.0), cand(1, 2, 10.0), cand(2, 2, 0.0)];
        let report = select_gangs_report(&cands, 4, 29.5);
        let keys: Vec<u32> = report.iter().map(|a| a.key).collect();
        assert_eq!(keys, select_gangs(&cands, 4, 29.5));
        // Head admission has no fitness; fitness-loop admissions do.
        assert_eq!(report[0].fitness, None);
        assert_eq!(report[0].available_per_proc, None);
        let second = &report[1];
        assert!(second.fitness.is_some() && second.available_per_proc.is_some());
        // The recorded ABBW/proc is the value the fitness used:
        // (29.5 − 22.0) / 2 = 3.75.
        assert!((second.available_per_proc.unwrap() - 3.75).abs() < 1e-9);
    }

    #[test]
    fn fills_all_processors_when_enough_jobs_fit() {
        let picked = select_gangs(
            &[
                cand(0, 1, 1.0),
                cand(1, 1, 1.0),
                cand(2, 1, 1.0),
                cand(3, 1, 1.0),
                cand(4, 1, 1.0),
            ],
            4,
            29.5,
        );
        assert_eq!(picked.len(), 4);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_cands() -> impl Strategy<Value = Vec<Candidate<u32>>> {
            prop::collection::vec((1usize..5, 0.0f64..30.0), 0..10).prop_map(|v| {
                v.into_iter()
                    .enumerate()
                    .map(|(i, (w, b))| Candidate {
                        key: i as u32,
                        width: w,
                        bbw_per_thread: b,
                    })
                    .collect()
            })
        }

        proptest! {
            /// Admitted widths never exceed the processor count, no job is
            /// admitted twice, and admission is maximal (nothing that fits
            /// is left out while processors are free).
            #[test]
            fn admission_invariants(cands in arb_cands(), cpus in 1usize..8) {
                let picked = select_gangs(&cands, cpus, 29.5);
                let width_of = |k: u32| cands.iter().find(|c| c.key == k).unwrap().width;
                let used: usize = picked.iter().map(|&k| width_of(k)).sum();
                prop_assert!(used <= cpus);
                let mut uniq = picked.clone();
                uniq.dedup();
                uniq.sort();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), picked.len());
                // Maximality.
                let free = cpus - used;
                for c in &cands {
                    if !picked.contains(&c.key) && c.width > 0 {
                        prop_assert!(c.width > free, "job {} fits but was not admitted", c.key);
                    }
                }
            }

            /// The head-of-list job (first that can fit) is always admitted.
            #[test]
            fn head_guarantee(cands in arb_cands(), cpus in 1usize..8) {
                let picked = select_gangs(&cands, cpus, 29.5);
                if let Some(head) = cands.iter().find(|c| c.width > 0 && c.width <= cpus) {
                    prop_assert_eq!(picked.first().copied(), Some(head.key));
                }
            }
        }
    }
}
