//! The baseline: a Linux 2.4-class time-sharing scheduler, expressed as a
//! pinned-placement [`crate::pipeline::Selector`] plus presets.
//!
//! The paper compares against "the standard Linux scheduler" of kernel
//! 2.4.20. What matters for the comparison is reproduced here:
//!
//! * **per-thread time slices with epochs** — every runnable thread gets a
//!   slice (`counter`); when all runnable threads have exhausted theirs,
//!   a new epoch refills them;
//! * **dynamic priority** — the remaining slice *is* the priority
//!   (`goodness`), so threads that ran less recently win;
//! * **cache-affinity bias** — a thread whose previous cpu is available
//!   gets a goodness bonus on it, biasing the scheduler to keep threads
//!   where their cache state lives;
//! * **bandwidth obliviousness** — nothing in the selection looks at bus
//!   traffic (the preset stack uses the null estimator), so an application
//!   thread is happily co-scheduled with three BBMA streamers, which is
//!   precisely the pathology of §5;
//! * threads are scheduled **independently** (no gangs) — the selector
//!   returns a pinned thread→cpu schedule, bypassing admission and
//!   placement.
//!
//! The model is a global-queue approximation of the per-cpu O(n) 2.4
//! scheduler, invoked every `quantum_us` (the paper states the Linux
//! quantum is half the CPU manager's 200 ms quantum).

use std::collections::BTreeMap;

use busbw_sim::{AppId, Assignment, CpuId, SimTime, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pipeline::{
    NullEstimator, Open, PackedPlacer, PolicyStack, Selection, Selector, StageCtx,
};
use crate::selection::Candidate;

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinuxConfig {
    /// Scheduling quantum (epoch slice), µs. The paper: 100 ms.
    pub quantum_us: u64,
    /// Goodness bonus (in slice-µs) for staying on the previous cpu.
    /// Linux 2.4's `PROC_CHANGE_PENALTY` plays the same role.
    pub affinity_bonus_us: i64,
    /// Stagger threads' *initial* slices deterministically so slice
    /// expiries desynchronize across threads. On a real multiprogrammed
    /// system threads never join the runqueue at the same instant (runtime
    /// start-up, page faults, connection handshakes); the simulator's
    /// exact t=0 alignment is an artifact that would otherwise make the
    /// baseline accidentally gang-schedule sibling threads forever.
    pub stagger_start: bool,
    /// Amplitude (µs of goodness) of per-decision selection noise, and the
    /// reason it exists: a real kernel's selection order is perturbed by
    /// unsynchronized per-cpu timer interrupts, page faults, and
    /// load-balancer churn, so the set of threads co-running varies from
    /// quantum to quantum. A noiseless global model instead locks into one
    /// fixed co-run pattern — often an accidentally optimal one. The noise
    /// is seeded and deterministic per run. Set 0 to disable.
    pub selection_jitter_us: i64,
    /// Seed for the selection noise.
    pub jitter_seed: u64,
}

impl Default for LinuxConfig {
    fn default() -> Self {
        Self {
            quantum_us: 100_000,
            affinity_bonus_us: 15_000,
            stagger_start: true,
            selection_jitter_us: 40_000,
            jitter_seed: 0x1234_5678,
        }
    }
}

/// The Linux-2.4 epoch/goodness selection as a pipeline stage: scores
/// every (free cpu, runnable thread) pair by remaining slice + affinity
/// bonus + seeded jitter and returns a [`Selection::Pinned`] schedule.
pub struct LinuxEpochSelector {
    cfg: LinuxConfig,
    /// Remaining slice per thread (µs). May go slightly negative when a
    /// thread runs past its slice inside one scheduler interval.
    slices: BTreeMap<ThreadId, i64>,
    /// Threads that ran in the last interval (to charge their slices).
    last_running: Vec<ThreadId>,
    last_at_us: SimTime,
    /// Epochs completed (visible for tests/diagnostics).
    epochs: u64,
    rng: StdRng,
}

impl LinuxEpochSelector {
    /// Selector with the paper's parameters.
    pub fn new() -> Self {
        Self::with_config(LinuxConfig::default())
    }

    /// Selector with custom parameters.
    ///
    /// # Panics
    /// Panics if the quantum is zero.
    pub fn with_config(cfg: LinuxConfig) -> Self {
        assert!(cfg.quantum_us > 0, "quantum must be positive");
        Self {
            cfg,
            slices: BTreeMap::new(),
            last_running: Vec::new(),
            last_at_us: 0,
            epochs: 0,
            rng: StdRng::seed_from_u64(cfg.jitter_seed),
        }
    }

    /// Number of epochs (global slice refills) so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The configuration in use.
    pub fn config(&self) -> LinuxConfig {
        self.cfg
    }
}

impl Default for LinuxEpochSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl Selector for LinuxEpochSelector {
    fn label(&self) -> &'static str {
        "linux-epoch"
    }

    fn select(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        _cands: &[Candidate<AppId>],
        _admitted: &[usize],
        _free: usize,
    ) -> Selection {
        let view = ctx.view;
        // Charge the threads that ran since the last invocation.
        let ran_for = (view.now - self.last_at_us) as i64;
        for t in &self.last_running {
            if let Some(s) = self.slices.get_mut(t) {
                *s -= ran_for;
            }
        }
        self.last_at_us = view.now;

        // Runnable thread set (drop finished threads' slices).
        let runnable: Vec<ThreadId> = view
            .threads()
            .filter(|t| t.is_runnable())
            .map(|t| t.id)
            .collect();
        self.slices.retain(|t, _| runnable.contains(t));
        for &t in &runnable {
            let initial = if self.cfg.stagger_start {
                // Deterministic per-thread fraction in [0.25, 1.0) of a
                // full quantum (see `LinuxConfig::stagger_start`).
                let h = t.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
                let frac = 0.25 + 0.75 * (h as f64 / (1u64 << 24) as f64);
                (self.cfg.quantum_us as f64 * frac) as i64
            } else {
                self.cfg.quantum_us as i64
            };
            self.slices.entry(t).or_insert(initial);
        }

        // Epoch: when every runnable thread has exhausted its slice,
        // refill. (2.4 also gives sleepers half their leftover; all our
        // threads are cpu-bound, so plain refill is equivalent.)
        if !runnable.is_empty() && self.slices.values().all(|&s| s <= 0) {
            for s in self.slices.values_mut() {
                *s = self.cfg.quantum_us as i64;
            }
            self.epochs += 1;
        }

        // Selection: per cpu, pick the thread with the best goodness =
        // remaining slice + affinity bonus (if this cpu was its last).
        // Greedy over cpus in index order; deterministic tie-break by
        // thread id. Threads with exhausted slices still run if cpus are
        // left over (work conserving, as in 2.4 within an epoch).
        let mut free_cpus: Vec<CpuId> = (0..view.num_cpus).map(CpuId).collect();
        let mut available: Vec<ThreadId> = runnable.clone();
        let mut assignments = Vec::new();
        while !free_cpus.is_empty() && !available.is_empty() {
            // Pick globally best (cpu, thread) pair first so affinity
            // matches are honored before generic placements.
            let mut best: Option<(i64, usize, usize)> = None; // (goodness, cpu_idx, thr_idx)
            for (ci, &cpu) in free_cpus.iter().enumerate() {
                for (ti, &tid) in available.iter().enumerate() {
                    let info = view.thread(tid).expect("runnable thread exists");
                    let mut g = self.slices[&tid];
                    if info.last_cpu == Some(cpu) {
                        g += self.cfg.affinity_bonus_us;
                    }
                    if self.cfg.selection_jitter_us > 0 {
                        g += self.rng.gen_range(0..=self.cfg.selection_jitter_us);
                    }
                    let better = match best {
                        None => true,
                        Some((bg, _, _)) => g > bg,
                    };
                    if better {
                        best = Some((g, ci, ti));
                    }
                }
            }
            let (_, ci, ti) = best.expect("loop guards non-empty");
            let cpu = free_cpus.remove(ci);
            let tid = available.remove(ti);
            assignments.push(Assignment { thread: tid, cpu });
        }

        self.last_running = assignments.iter().map(|a| a.thread).collect();
        Selection::Pinned(assignments)
    }
}

/// The Linux-2.4-like baseline as a policy stack, with the paper's
/// parameters: no estimation, open admission, epoch/goodness pinned
/// selection every 100 ms.
pub fn linux_like() -> PolicyStack {
    linux_like_with_config(LinuxConfig::default())
}

/// [`linux_like`] with custom parameters.
pub fn linux_like_with_config(cfg: LinuxConfig) -> PolicyStack {
    PolicyStack::new(
        "Linux",
        cfg.quantum_us,
        Box::new(NullEstimator),
        Box::new(Open),
        Box::new(LinuxEpochSelector::with_config(cfg)),
        Box::new(PackedPlacer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SoloSelector;
    use busbw_sim::{
        AppDescriptor, ConstantDemand, Machine, Scheduler, StopCondition, ThreadSpec, XEON_4WAY,
    };
    use std::collections::BTreeMap as Map;

    fn add(m: &mut Machine, name: &str, n: usize, rate: f64, mu: f64, work: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(rate, mu))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    #[test]
    fn four_threads_four_cpus_all_run_continuously() {
        let mut m = Machine::new(XEON_4WAY);
        let a = add(&mut m, "a", 4, 0.5, 0.1, 300_000.0);
        let mut s = linux_like();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![a]));
        assert!(out.condition_met);
        let t = m.turnaround_us(a).unwrap();
        assert!(t < 330_000, "no time-sharing needed, got {t}");
    }

    #[test]
    fn eight_threads_time_share_fairly() {
        let mut m = Machine::new(XEON_4WAY);
        // 8 identical cpu-bound threads on 4 cpus → everyone should get
        // ~half the cpu over a long horizon.
        for i in 0..4 {
            add(&mut m, &format!("a{i}"), 2, 0.2, 0.05, f64::INFINITY);
        }
        // Drive the bare selector so the epoch counter stays observable.
        let mut s = SoloSelector::new(LinuxEpochSelector::new(), LinuxConfig::default().quantum_us);
        let horizon = 4_000_000;
        m.run(&mut s, StopCondition::At(horizon));
        let v = m.view();
        for t in v.threads() {
            let share = t.progress_us / horizon as f64;
            assert!(
                (0.40..0.60).contains(&share),
                "thread {} got cpu share {share}",
                t.id
            );
        }
        assert!(
            s.selector().epochs() > 5,
            "epochs {}",
            s.selector().epochs()
        );
    }

    #[test]
    fn affinity_keeps_threads_on_their_cpus_when_uncontended() {
        let mut m = Machine::new(XEON_4WAY);
        add(&mut m, "a", 4, 0.5, 0.1, f64::INFINITY);
        // Isolate the affinity mechanism: no selection noise.
        let mut s = linux_like_with_config(LinuxConfig {
            selection_jitter_us: 0,
            ..LinuxConfig::default()
        });
        let d1 = s.schedule(&m.view());
        let first: Map<_, _> = d1.assignments.iter().map(|a| (a.thread, a.cpu)).collect();
        let _ = m.run(
            &mut busbw_sim::testkit::Replay::new(d1),
            StopCondition::At(m.now() + 100_000),
        );
        for _ in 0..5 {
            let d = s.schedule(&m.view());
            for a in &d.assignments {
                assert_eq!(first[&a.thread], a.cpu, "uncontended thread migrated");
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 100_000),
            );
        }
    }

    #[test]
    fn scheduler_is_bandwidth_oblivious() {
        // A heavy streamer and a light thread are scheduled purely by
        // slice, never by bandwidth: with 2 threads and 4 cpus both always
        // run, regardless of bus pressure.
        let mut m = Machine::new(XEON_4WAY);
        add(&mut m, "heavy", 1, 23.6, 0.98, f64::INFINITY);
        add(&mut m, "light", 1, 0.01, 0.01, f64::INFINITY);
        let mut s = linux_like();
        let d = s.schedule(&m.view());
        assert_eq!(d.assignments.len(), 2);
    }

    #[test]
    fn no_gang_semantics_partial_apps_run() {
        let mut m = Machine::new(XEON_4WAY);
        // Two 3-thread apps: 6 threads on 4 cpus. The top-4-by-slice pick
        // necessarily splits a gang (3 + 1) — something the paper's gang
        // policies never do.
        for i in 0..2 {
            add(&mut m, &format!("a{i}"), 3, 1.0, 0.2, f64::INFINITY);
        }
        let mut s = linux_like();
        let mut saw_partial = false;
        for _ in 0..10 {
            let d = s.schedule(&m.view());
            let mut per_app: Map<AppId, usize> = Map::new();
            for a in &d.assignments {
                let info = m.view().thread(a.thread).unwrap();
                *per_app.entry(info.app).or_default() += 1;
            }
            if per_app.values().any(|&n| n > 0 && n < 3) {
                saw_partial = true;
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 100_000),
            );
        }
        assert!(saw_partial, "expected at least one split gang");
    }

    #[test]
    fn finished_threads_leave_the_queue() {
        let mut m = Machine::new(XEON_4WAY);
        let short = add(&mut m, "short", 4, 0.5, 0.1, 50_000.0);
        let long = add(&mut m, "long", 4, 0.5, 0.1, 400_000.0);
        let mut s = linux_like();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![short, long]));
        assert!(out.condition_met);
        // Once `short` exits, `long` owns the machine: total runtime well
        // under full 2× time sharing.
        let t = m.turnaround_us(long).unwrap();
        assert!(t < 600_000, "long turnaround {t}");
    }

    #[test]
    fn preset_reports_linux_name_and_stage_labels() {
        let s = linux_like();
        assert_eq!(s.name(), "Linux");
        assert_eq!(s.stage_labels(), ["Null", "open", "linux-epoch", "packed"]);
    }
}
