//! A second baseline: the Linux 2.6 O(1)-class scheduler, expressed as a
//! pinned-placement [`crate::pipeline::Selector`] plus presets.
//!
//! The paper compares against 2.4; by the time of publication the O(1)
//! scheduler (per-cpu runqueues, active/expired priority arrays, periodic
//! load balancing) was replacing it. Reproducing it answers a natural
//! reviewer question — *does the win survive a stronger baseline?* — and
//! exercises a genuinely different scheduling structure:
//!
//! * **per-cpu runqueues**: each cpu schedules independently from its own
//!   queue; threads have a home cpu and no global goodness scan exists;
//! * **active/expired arrays**: a thread that exhausts its timeslice moves
//!   to the expired array of its cpu; when the active array drains, the
//!   arrays swap (per-cpu epochs — unlike 2.4's global epoch);
//! * **load balancing**: periodically, an underloaded cpu pulls runnable
//!   threads from the busiest cpu's queue (migration — with the cache
//!   consequences the simulator models).
//!
//! Like its 2.4 sibling this baseline is bandwidth-oblivious and splits
//! gangs freely. Timeslices are 100 ms static (the O(1) scheduler's
//! `DEF_TIMESLICE` neighborhood for default-nice cpu hogs).

use std::collections::BTreeMap;

use busbw_sim::{AppId, Assignment, CpuId, SimTime, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pipeline::{
    NullEstimator, Open, PackedPlacer, PolicyStack, Selection, Selector, StageCtx,
};
use crate::selection::Candidate;

/// O(1)-baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct O1Config {
    /// Static timeslice, µs.
    pub timeslice_us: u64,
    /// Scheduler invocation period, µs (per-cpu preemption granularity —
    /// the tick at which expired slices are acted on).
    pub period_us: u64,
    /// Load-balance period, µs.
    pub balance_period_us: u64,
    /// Imbalance threshold: pull only if the busiest queue has at least
    /// this many more runnable threads than ours.
    pub imbalance_threshold: usize,
    /// Seed for arrival placement of new threads (round-robin with a
    /// seeded tiebreak, standing in for fork-time balancing noise).
    pub seed: u64,
}

impl Default for O1Config {
    fn default() -> Self {
        Self {
            timeslice_us: 100_000,
            period_us: 20_000,
            balance_period_us: 200_000,
            imbalance_threshold: 2,
            seed: 0x51ED,
        }
    }
}

struct PerCpu {
    /// Active array: (remaining slice µs, thread), FIFO per priority —
    /// one priority level here since every thread is a default-nice hog.
    active: Vec<(i64, ThreadId)>,
    expired: Vec<ThreadId>,
    current: Option<ThreadId>,
}

impl PerCpu {
    fn new() -> Self {
        Self {
            active: Vec::new(),
            expired: Vec::new(),
            current: None,
        }
    }

    fn runnable_count(&self) -> usize {
        self.active.len() + self.expired.len() + usize::from(self.current.is_some())
    }
}

/// The O(1) per-cpu runqueue machinery as a pipeline stage: charges
/// slices, swaps active/expired arrays, load-balances, and returns a
/// [`Selection::Pinned`] schedule (each cpu's current thread).
pub struct LinuxO1Selector {
    cfg: O1Config,
    cpus: Vec<PerCpu>,
    /// Remaining slice of the thread currently on each cpu.
    current_slice: BTreeMap<ThreadId, i64>,
    known: std::collections::BTreeSet<ThreadId>,
    last_at_us: SimTime,
    next_balance_us: SimTime,
    rng: StdRng,
    /// Migrations performed by the load balancer (diagnostics).
    migrations: u64,
}

impl LinuxO1Selector {
    /// Selector with default parameters.
    pub fn new() -> Self {
        Self::with_config(O1Config::default())
    }

    /// Selector with custom parameters.
    ///
    /// # Panics
    /// Panics if any period is zero.
    pub fn with_config(cfg: O1Config) -> Self {
        assert!(cfg.timeslice_us > 0 && cfg.period_us > 0 && cfg.balance_period_us > 0);
        Self {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            cpus: Vec::new(),
            current_slice: BTreeMap::new(),
            known: Default::default(),
            last_at_us: 0,
            next_balance_us: 0,
            migrations: 0,
        }
    }

    /// Load-balancer migrations so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    fn ensure_cpus(&mut self, n: usize) {
        while self.cpus.len() < n {
            self.cpus.push(PerCpu::new());
        }
    }

    /// Enqueue a newly seen thread on the least-loaded cpu (seeded
    /// tiebreak).
    fn enqueue_new(&mut self, t: ThreadId) {
        let min = self
            .cpus
            .iter()
            .map(|c| c.runnable_count())
            .min()
            .unwrap_or(0);
        let candidates: Vec<usize> = self
            .cpus
            .iter()
            .enumerate()
            .filter(|(_, c)| c.runnable_count() == min)
            .map(|(i, _)| i)
            .collect();
        let pick = candidates[self.rng.gen_range(0..candidates.len())];
        self.cpus[pick]
            .active
            .push((self.cfg.timeslice_us as i64, t));
    }

    fn balance(&mut self) {
        let loads: Vec<usize> = self.cpus.iter().map(|c| c.runnable_count()).collect();
        let (busiest, &max) = loads
            .iter()
            .enumerate()
            .max_by_key(|&(_, l)| *l)
            .expect("cpus exist");
        let (idlest, &min) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .expect("cpus exist");
        if max >= min + self.cfg.imbalance_threshold {
            // Pull one queued (not current) thread; prefer expired ones
            // (they are furthest from running anyway — cheapest to move).
            let src = &mut self.cpus[busiest];
            let moved = if let Some(t) = src.expired.pop() {
                Some((self.cfg.timeslice_us as i64, t))
            } else {
                src.active.pop()
            };
            if let Some(e) = moved {
                self.cpus[idlest].active.push(e);
                self.migrations += 1;
            }
        }
    }
}

impl Default for LinuxO1Selector {
    fn default() -> Self {
        Self::new()
    }
}

impl Selector for LinuxO1Selector {
    fn label(&self) -> &'static str {
        "linux-o1"
    }

    fn select(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        _cands: &[Candidate<AppId>],
        _admitted: &[usize],
        _free: usize,
    ) -> Selection {
        let view = ctx.view;
        self.ensure_cpus(view.num_cpus);
        let dt = (view.now - self.last_at_us) as i64;
        self.last_at_us = view.now;

        // Charge running threads.
        for c in &mut self.cpus {
            if let Some(t) = c.current {
                if let Some(s) = self.current_slice.get_mut(&t) {
                    *s -= dt;
                }
            }
        }

        // Remove finished threads everywhere.
        let runnable: std::collections::BTreeSet<ThreadId> = view
            .threads()
            .filter(|t| t.is_runnable())
            .map(|t| t.id)
            .collect();
        for c in &mut self.cpus {
            c.active.retain(|(_, t)| runnable.contains(t));
            c.expired.retain(|t| runnable.contains(t));
            if let Some(t) = c.current {
                if !runnable.contains(&t) {
                    c.current = None;
                    self.current_slice.remove(&t);
                }
            }
        }
        self.known.retain(|t| runnable.contains(t));

        // Enqueue newly arrived threads.
        let new: Vec<ThreadId> = runnable
            .iter()
            .copied()
            .filter(|t| !self.known.contains(t))
            .collect();
        for t in new {
            self.known.insert(t);
            self.enqueue_new(t);
        }

        // Per-cpu scheduling: expire the current thread when its slice is
        // gone, pick the next from the active array, swap arrays when
        // drained.
        for c in self.cpus.iter_mut() {
            if let Some(t) = c.current {
                let slice = self.current_slice.get(&t).copied().unwrap_or(0);
                if slice <= 0 {
                    c.expired.push(t);
                    c.current = None;
                    self.current_slice.remove(&t);
                }
            }
            if c.current.is_none() {
                if c.active.is_empty() && !c.expired.is_empty() {
                    // Array swap: the per-cpu epoch.
                    let ts = self.cfg.timeslice_us as i64;
                    c.active = c.expired.drain(..).map(|t| (ts, t)).collect();
                }
                if let Some((slice, t)) = c.active.pop() {
                    c.current = Some(t);
                    self.current_slice.insert(t, slice);
                }
            }
        }

        // Periodic load balancing.
        if view.now >= self.next_balance_us {
            self.balance();
            self.next_balance_us = view.now + self.cfg.balance_period_us;
        }

        let assignments = self
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.current.map(|t| Assignment {
                    thread: t,
                    cpu: CpuId(i),
                })
            })
            .collect();
        Selection::Pinned(assignments)
    }
}

/// The Linux-2.6 O(1) baseline as a policy stack with default parameters:
/// no estimation, open admission, per-cpu runqueue pinned selection every
/// `period_us`.
pub fn linux_o1() -> PolicyStack {
    linux_o1_with_config(O1Config::default())
}

/// [`linux_o1`] with custom parameters.
pub fn linux_o1_with_config(cfg: O1Config) -> PolicyStack {
    PolicyStack::new(
        "LinuxO1",
        cfg.period_us,
        Box::new(NullEstimator),
        Box::new(Open),
        Box::new(LinuxO1Selector::with_config(cfg)),
        Box::new(PackedPlacer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::SoloSelector;
    use busbw_sim::{
        AppDescriptor, ConstantDemand, Machine, Scheduler, StopCondition, ThreadSpec, XEON_4WAY,
    };

    fn add(m: &mut Machine, name: &str, n: usize, work: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(0.5, 0.1))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    #[test]
    fn four_threads_run_continuously() {
        let mut m = Machine::new(XEON_4WAY);
        let a = add(&mut m, "a", 4, 300_000.0);
        let mut s = linux_o1();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![a]));
        assert!(out.condition_met);
        assert!(m.turnaround_us(a).unwrap() < 340_000);
    }

    #[test]
    fn eight_threads_share_fairly_via_array_swaps() {
        let mut m = Machine::new(XEON_4WAY);
        for i in 0..4 {
            add(&mut m, &format!("a{i}"), 2, f64::INFINITY);
        }
        let mut s = linux_o1();
        let horizon = 4_000_000;
        m.run(&mut s, StopCondition::At(horizon));
        let v = m.view();
        for t in v.threads() {
            let share = t.progress_us / horizon as f64;
            assert!(
                (0.30..0.70).contains(&share),
                "thread {} share {share}",
                t.id
            );
        }
    }

    #[test]
    fn load_balancer_fixes_skewed_queues() {
        // 5 threads: initial placement leaves some cpu with 2+ while
        // another may go idle once work finishes; the balancer must act.
        let mut m = Machine::new(XEON_4WAY);
        add(&mut m, "wide", 5, f64::INFINITY);
        let mut s = linux_o1();
        m.run(&mut s, StopCondition::At(3_000_000));
        // 5 threads on 4 cpus: everyone must have run.
        let v = m.view();
        for t in v.threads() {
            assert!(t.progress_us > 0.0, "thread {} starved", t.id);
        }
    }

    #[test]
    fn balancer_migrations_are_counted() {
        let mut m = Machine::new(XEON_4WAY);
        add(&mut m, "many", 8, f64::INFINITY);
        // Drive the bare selector so the migration counter stays
        // observable.
        let mut s = SoloSelector::new(LinuxO1Selector::new(), O1Config::default().period_us);
        m.run(&mut s, StopCondition::At(2_000_000));
        // With random initial placement of 8 threads, some imbalance is
        // essentially certain; the balancer runs 10 times over 2 s.
        // (Tolerate 0 for the unlucky perfectly-balanced seed.)
        assert!(
            s.selector().migrations() < 50,
            "balancer thrashing: {}",
            s.selector().migrations()
        );
    }

    #[test]
    fn finished_threads_leave_their_queues() {
        let mut m = Machine::new(XEON_4WAY);
        let short = add(&mut m, "short", 4, 50_000.0);
        let long = add(&mut m, "long", 4, 400_000.0);
        let mut s = linux_o1();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![short, long]));
        assert!(out.condition_met);
        assert!(m.turnaround_us(long).unwrap() < 900_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut m = Machine::new(XEON_4WAY);
            let a = add(&mut m, "a", 2, 400_000.0);
            add(&mut m, "bg", 4, f64::INFINITY);
            let mut s = linux_o1_with_config(O1Config {
                seed,
                ..O1Config::default()
            });
            m.run(&mut s, StopCondition::AppsFinished(vec![a]));
            m.turnaround_us(a).unwrap()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn preset_reports_o1_name_and_stage_labels() {
        let s = linux_o1();
        assert_eq!(s.name(), "LinuxO1");
        assert_eq!(s.stage_labels(), ["Null", "open", "linux-o1", "packed"]);
    }
}
