//! The CPU manager server.
//!
//! Owns the circular applications list, polls every running application's
//! arena at each sampling point (twice per quantum), runs the shared
//! selection algorithm at quantum boundaries, and steers applications with
//! block/unblock signals.
//!
//! The manager is written to be driven two ways:
//!
//! * **explicitly** — tests and deterministic harnesses call
//!   [`CpuManager::pump`], [`CpuManager::sample`] and
//!   [`CpuManager::quantum`] with their own clock;
//! * **in real time** — [`CpuManager::run_realtime`] loops with the
//!   configured quantum against the OS clock (see
//!   `examples/cpu_manager_demo.rs`).

use busbw_trace::{EventBus, TraceEvent};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::estimator::BandwidthEstimator;
use crate::reconstruct::DemandTracker;
use crate::selection::{select_gangs, Candidate};

use super::arena::SharedArena;
use super::protocol::{ClientId, ConnectAck, ToManager};
use super::signals::{Signal, SignalGate};

/// Manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct ManagerConfig {
    /// Processors the manager allocates.
    pub num_cpus: usize,
    /// Total bus bandwidth (tx/µs) used in `ABBW/proc`.
    pub bus_total_tx_per_us: f64,
    /// Scheduling quantum, µs (paper: 200 ms).
    pub quantum_us: u64,
    /// Arena samples per quantum (paper: 2).
    pub samples_per_quantum: u32,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            num_cpus: 4,
            bus_total_tx_per_us: busbw_sim::PAPER_BUS_TX_PER_US,
            quantum_us: 200_000,
            samples_per_quantum: 2,
        }
    }
}

/// What applications use to reach the manager.
#[derive(Clone)]
pub struct ManagerHandle {
    tx: Sender<ToManager>,
}

impl ManagerHandle {
    /// The raw message channel (used by the client run-time library).
    pub fn sender(&self) -> Sender<ToManager> {
        self.tx.clone()
    }
}

struct Job {
    id: ClientId,
    name: String,
    arena: SharedArena,
    gates: Vec<Arc<SignalGate>>,
    blocked: bool,
}

/// The user-level CPU manager.
pub struct CpuManager {
    cfg: ManagerConfig,
    rx: Receiver<ToManager>,
    estimator: Box<dyn BandwidthEstimator>,
    /// Circular applications list (head = next guaranteed job).
    jobs: Vec<Job>,
    running: Vec<ClientId>,
    next_id: u64,
    /// Reconstructs bandwidth requirements from arena consumption reports
    /// (see [`crate::reconstruct`]).
    demand: DemandTracker,
    /// Average bus dilation Λ̄ for the current interval, as measured by
    /// the operator's IOQ-occupancy counter (1.0 = uncontended). Updated
    /// through [`CpuManager::note_dilation`].
    dilation: f64,
    /// Structured event sink (detached by default; see
    /// [`CpuManager::set_tracer`]).
    tracer: EventBus,
}

impl CpuManager {
    /// Create a manager; returns it plus the handle applications connect
    /// through.
    pub fn new(
        cfg: ManagerConfig,
        estimator: Box<dyn BandwidthEstimator>,
    ) -> (Self, ManagerHandle) {
        assert!(cfg.num_cpus > 0 && cfg.quantum_us > 0 && cfg.samples_per_quantum > 0);
        let (tx, rx) = unbounded();
        (
            Self {
                cfg,
                rx,
                estimator,
                jobs: Vec::new(),
                running: Vec::new(),
                next_id: 0,
                demand: DemandTracker::new(),
                dilation: 1.0,
                tracer: EventBus::off(),
            },
            ManagerHandle { tx },
        )
    }

    /// Attach a structured-event tracer. The manager emits
    /// connect/disconnect, gate-transition, and signal-reordering events
    /// ([`TraceEvent::MgrConnect`] and friends).
    pub fn set_tracer(&mut self, tracer: EventBus) {
        self.tracer = tracer;
    }

    /// The configuration in force.
    pub fn config(&self) -> ManagerConfig {
        self.cfg
    }

    /// Names of currently connected jobs, in list order (diagnostics).
    pub fn job_names(&self) -> Vec<String> {
        self.jobs.iter().map(|j| j.name.clone()).collect()
    }

    /// Ids of jobs unblocked in the current quantum.
    pub fn running(&self) -> &[ClientId] {
        &self.running
    }

    /// Drain pending protocol messages (connections, thread lifecycle).
    pub fn pump(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            match msg {
                ToManager::Connect { name, reply } => {
                    let id = ClientId(self.next_id);
                    self.next_id += 1;
                    let arena = SharedArena::new();
                    // New jobs join the end of the circular list, blocked
                    // until the next quantum admits them: the manager owns
                    // all scheduling from the moment of connection.
                    self.jobs.push(Job {
                        id,
                        name,
                        arena: arena.clone(),
                        gates: Vec::new(),
                        blocked: false,
                    });
                    let _ = reply.send(ConnectAck {
                        app: id,
                        arena,
                        update_period_us: self.cfg.quantum_us / self.cfg.samples_per_quantum as u64,
                    });
                    if self.tracer.emits() {
                        self.tracer.emit(TraceEvent::MgrConnect {
                            client: id.0,
                            threads: 0,
                        });
                    }
                }
                ToManager::ThreadCreated { app, gate } => {
                    if let Some(j) = self.jobs.iter_mut().find(|j| j.id == app) {
                        if j.blocked {
                            // A thread born into a blocked job must not run.
                            gate.deliver(Signal::Block);
                        }
                        j.gates.push(gate);
                    }
                }
                ToManager::ThreadExited { app } => {
                    if let Some(j) = self.jobs.iter_mut().find(|j| j.id == app) {
                        j.gates.pop();
                    }
                }
                ToManager::Disconnect { app } => {
                    if let Some(pos) = self.jobs.iter().position(|j| j.id == app) {
                        let j = self.jobs.remove(pos);
                        // Leave no thread parked forever.
                        if j.blocked {
                            for g in &j.gates {
                                g.deliver(Signal::Unblock);
                            }
                        }
                        self.estimator.forget(busbw_sim::AppId(app.0));
                        self.demand.forget(busbw_sim::AppId(app.0));
                        self.running.retain(|&r| r != app);
                        if self.tracer.emits() {
                            self.tracer
                                .emit(TraceEvent::MgrDisconnect { client: app.0 });
                        }
                    }
                }
            }
        }
    }

    /// Report the bus dilation Λ̄ measured over the current interval (from
    /// an IOQ-occupancy PMU reading on real hardware). Used to reconstruct
    /// bandwidth requirements from the consumption the arenas report.
    pub fn note_dilation(&mut self, lambda: f64) {
        self.dilation = lambda.max(1.0);
    }

    /// Fault injection: deliver an *inverted* (Unblock before Block) signal
    /// pair to every gate of `app` — the reordering §4 explicitly
    /// tolerates ("a thread blocks only if the number of received block
    /// signals exceeds the corresponding number of unblock signals"). The
    /// net gate state is unchanged by construction; each delivery is
    /// recorded as a [`TraceEvent::MgrSignalReorder`]. Returns the number
    /// of gates signalled.
    pub fn inject_signal_inversion(&mut self, app: ClientId) -> usize {
        let mut signalled = 0;
        if let Some(j) = self.jobs.iter().find(|j| j.id == app) {
            for (ti, g) in j.gates.iter().enumerate() {
                g.deliver(Signal::Unblock);
                g.deliver(Signal::Block);
                signalled += 1;
                if self.tracer.emits() {
                    self.tracer.emit(TraceEvent::MgrSignalReorder {
                        client: app.0,
                        thread: ti as u64,
                    });
                }
            }
        }
        signalled
    }

    /// A sampling point: poll the arena of every *running* job and feed
    /// the estimator (the paper polls twice per quantum; blocked jobs are
    /// not measured because they are not executing).
    pub fn sample(&mut self) {
        let mut observed = Vec::new();
        for j in &self.jobs {
            if !self.running.contains(&j.id) {
                continue;
            }
            if let Some(snap) = j.arena.read() {
                observed.push((j.id, snap.rate_per_thread()));
            }
        }
        for (id, per_thread) in observed {
            let demand = self
                .demand
                .observe(busbw_sim::AppId(id.0), per_thread, self.dilation);
            self.estimator.record_sample(busbw_sim::AppId(id.0), demand);
        }
    }

    /// A quantum boundary: settle measurements, rotate the list, select the
    /// next gang set, and send block/unblock signals. Returns the ids
    /// selected to run.
    pub fn quantum(&mut self) -> Vec<ClientId> {
        self.pump();

        // Settle: the latest arena rate of each job that ran becomes its
        // latest-quantum measurement.
        let running = self.running.clone();
        let mut observed = Vec::new();
        for j in &self.jobs {
            if running.contains(&j.id) {
                if let Some(snap) = j.arena.read() {
                    observed.push((j.id, snap.rate_per_thread()));
                }
            }
        }
        for (id, per_thread) in observed {
            let demand = self
                .demand
                .observe(busbw_sim::AppId(id.0), per_thread, self.dilation);
            self.estimator
                .record_quantum(busbw_sim::AppId(id.0), demand);
        }

        // Rotate jobs that ran to the end of the circular list.
        let (ran, waiting): (Vec<Job>, Vec<Job>) = {
            let mut ran = Vec::new();
            let mut waiting = Vec::new();
            for j in self.jobs.drain(..) {
                if running.contains(&j.id) {
                    ran.push(j);
                } else {
                    waiting.push(j);
                }
            }
            (ran, waiting)
        };
        self.jobs = waiting;
        self.jobs.extend(ran);

        // Select.
        let candidates: Vec<Candidate<ClientId>> = self
            .jobs
            .iter()
            .map(|j| Candidate {
                key: j.id,
                width: j.gates.len(),
                bbw_per_thread: self.estimator.estimate(busbw_sim::AppId(j.id.0)),
            })
            .collect();
        let selected = select_gangs(&candidates, self.cfg.num_cpus, self.cfg.bus_total_tx_per_us);

        // Signal transitions. The manager signals every gate directly;
        // the client library's `forward` covers the paper's
        // one-thread-forwards-to-siblings variant.
        let selected_set: BTreeMap<ClientId, ()> = selected.iter().map(|&s| (s, ())).collect();
        let trace_on = self.tracer.emits();
        for j in &mut self.jobs {
            let should_run = selected_set.contains_key(&j.id);
            match (j.blocked, should_run) {
                // Transition running → blocked: one Block per gate.
                (false, false) => {
                    for (ti, g) in j.gates.iter().enumerate() {
                        g.deliver(Signal::Block);
                        if trace_on {
                            let (blocks, unblocks) = g.counts();
                            self.tracer.emit(TraceEvent::MgrGate {
                                client: j.id.0,
                                thread: ti as u64,
                                resumed: false,
                                blocks,
                                unblocks,
                            });
                        }
                    }
                    j.blocked = true;
                }
                // Transition blocked → running: one Unblock per gate.
                (true, true) => {
                    for (ti, g) in j.gates.iter().enumerate() {
                        g.deliver(Signal::Unblock);
                        if trace_on {
                            let (blocks, unblocks) = g.counts();
                            self.tracer.emit(TraceEvent::MgrGate {
                                client: j.id.0,
                                thread: ti as u64,
                                resumed: true,
                                blocks,
                                unblocks,
                            });
                        }
                    }
                    j.blocked = false;
                }
                // No transition: no signal — the counting gate relies on
                // blocks and unblocks arriving strictly in matched pairs.
                (false, true) | (true, false) => {}
            }
        }

        self.running = selected.clone();
        selected
    }

    /// Drive the manager against the OS clock until `stop` is set.
    /// Sampling happens `samples_per_quantum` times per quantum; the last
    /// sample coincides with the quantum boundary, as in the paper.
    pub fn run_realtime(mut self, stop: Arc<AtomicBool>) {
        let sample_period =
            Duration::from_micros(self.cfg.quantum_us / self.cfg.samples_per_quantum as u64);
        let mut next_quantum = Instant::now();
        while !stop.load(Ordering::SeqCst) {
            self.pump();
            self.quantum();
            next_quantum += Duration::from_micros(self.cfg.quantum_us);
            for _ in 0..self.cfg.samples_per_quantum {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                std::thread::sleep(
                    sample_period.min(next_quantum.saturating_duration_since(Instant::now())),
                );
                self.pump();
                self.sample();
            }
        }
        // Shutdown: release everyone.
        for j in &mut self.jobs {
            if j.blocked {
                for g in &j.gates {
                    g.deliver(Signal::Unblock);
                }
                j.blocked = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::LatestQuantumEstimator;
    use crate::manager::arena::ArenaSnapshot;
    use crossbeam::channel::unbounded as chan;

    fn connect(m: &mut CpuManager, h: &ManagerHandle, name: &str) -> ConnectAck {
        let (tx, rx) = chan();
        h.sender()
            .send(ToManager::Connect {
                name: name.into(),
                reply: tx,
            })
            .unwrap();
        // Single-threaded tests: the manager must pump to answer.
        m.pump();
        rx.recv_timeout(Duration::from_secs(1)).expect("ack")
    }

    fn add_threads(h: &ManagerHandle, app: ClientId, n: usize) -> Vec<Arc<SignalGate>> {
        (0..n)
            .map(|_| {
                let g = Arc::new(SignalGate::new());
                h.sender()
                    .send(ToManager::ThreadCreated {
                        app,
                        gate: g.clone(),
                    })
                    .unwrap();
                g
            })
            .collect()
    }

    fn mgr() -> (CpuManager, ManagerHandle) {
        CpuManager::new(
            ManagerConfig::default(),
            Box::new(LatestQuantumEstimator::new()),
        )
    }

    fn publish(arena: &SharedArena, seq: u64, threads: u32, rate: f64) {
        arena.publish(ArenaSnapshot {
            seq,
            threads,
            total_transactions: 0.0,
            rate_tx_per_us: rate,
            updated_at_us: seq * 100_000,
        });
    }

    #[test]
    fn connect_assigns_ids_and_update_period() {
        let (mut m, h) = mgr();
        let a = connect(&mut m, &h, "one");
        let b = connect(&mut m, &h, "two");
        assert_ne!(a.app, b.app);
        // 200 ms quantum, 2 samples → 100 ms period.
        assert_eq!(a.update_period_us, 100_000);
        m.pump();
        assert_eq!(m.job_names(), vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn quantum_runs_everything_that_fits() {
        let (mut m, h) = mgr();
        let a = connect(&mut m, &h, "a");
        let b = connect(&mut m, &h, "b");
        add_threads(&h, a.app, 2);
        add_threads(&h, b.app, 2);
        m.pump();
        let sel = m.quantum();
        assert_eq!(sel.len(), 2, "4 threads fit 4 cpus");
    }

    #[test]
    fn gang_exclusion_blocks_the_odd_job_out() {
        let (mut m, h) = mgr();
        let ids: Vec<ClientId> = (0..3)
            .map(|i| {
                let ack = connect(&mut m, &h, &format!("j{i}"));
                add_threads(&h, ack.app, 2);
                ack.app
            })
            .collect();
        m.pump();
        let sel = m.quantum();
        assert_eq!(sel.len(), 2, "only two 2-wide gangs fit");
        let left_out: Vec<ClientId> = ids.iter().copied().filter(|i| !sel.contains(i)).collect();
        assert_eq!(left_out.len(), 1);
    }

    #[test]
    fn rotation_gives_every_job_a_turn() {
        let (mut m, h) = mgr();
        let mut gates = BTreeMap::new();
        for i in 0..3 {
            let ack = connect(&mut m, &h, &format!("j{i}"));
            gates.insert(ack.app, add_threads(&h, ack.app, 2));
        }
        m.pump();
        let mut ran: std::collections::BTreeSet<ClientId> = Default::default();
        for _ in 0..3 {
            ran.extend(m.quantum());
        }
        assert_eq!(ran.len(), 3, "head-of-list rule must cycle all jobs");
    }

    #[test]
    fn signals_follow_selection_transitions() {
        let (mut m, h) = mgr();
        let a = connect(&mut m, &h, "a");
        let b = connect(&mut m, &h, "b");
        let c = connect(&mut m, &h, "c");
        let ga = add_threads(&h, a.app, 2);
        let gb = add_threads(&h, b.app, 2);
        let gc = add_threads(&h, c.app, 2);
        m.pump();
        let sel = m.quantum();
        // The job left out must be blocked; selected jobs runnable.
        for (id, gates) in [(a.app, &ga), (b.app, &gb), (c.app, &gc)] {
            let blocked = !sel.contains(&id);
            for g in gates {
                assert_eq!(g.should_block(), blocked, "{id} gate state wrong");
            }
        }
        // Run several quanta: gates always exactly track selection.
        for _ in 0..5 {
            let sel = m.quantum();
            for (id, gates) in [(a.app, &ga), (b.app, &gb), (c.app, &gc)] {
                let blocked = !sel.contains(&id);
                for g in gates {
                    assert_eq!(g.should_block(), blocked);
                }
            }
        }
    }

    #[test]
    fn bandwidth_estimates_steer_selection() {
        let (mut m, h) = mgr();
        // Three 2-wide jobs: two heavy, one idle. After measurements land,
        // a heavy head should be paired with the idle job.
        let heavy1 = connect(&mut m, &h, "heavy1");
        let heavy2 = connect(&mut m, &h, "heavy2");
        let idle = connect(&mut m, &h, "idle");
        add_threads(&h, heavy1.app, 2);
        add_threads(&h, heavy2.app, 2);
        add_threads(&h, idle.app, 2);
        m.pump();
        // Feed arenas continuously; run a few quanta so every job gets
        // measured while running.
        let mut heavy_pair = 0;
        for q in 1..=9u64 {
            publish(&heavy1.arena, q, 2, 22.0);
            publish(&heavy2.arena, q, 2, 22.0);
            publish(&idle.arena, q, 2, 0.01);
            m.sample();
            let sel = m.quantum();
            if q > 3 && sel.contains(&heavy1.app) && sel.contains(&heavy2.app) {
                heavy_pair += 1;
            }
        }
        assert_eq!(heavy_pair, 0, "heavy jobs were co-scheduled after warmup");
    }

    #[test]
    fn disconnect_releases_blocked_threads() {
        let (mut m, h) = mgr();
        let ids: Vec<_> = (0..3)
            .map(|i| {
                let ack = connect(&mut m, &h, &format!("j{i}"));
                (ack.app, add_threads(&h, ack.app, 2))
            })
            .collect();
        m.pump();
        let sel = m.quantum();
        let (blocked_id, blocked_gates) = ids
            .iter()
            .find(|(id, _)| !sel.contains(id))
            .expect("one job blocked");
        assert!(blocked_gates[0].should_block());
        h.sender()
            .send(ToManager::Disconnect { app: *blocked_id })
            .unwrap();
        m.pump();
        assert!(
            !blocked_gates[0].should_block(),
            "disconnect must unblock parked threads"
        );
        assert_eq!(m.job_names().len(), 2);
    }

    #[test]
    fn tracer_records_connects_gates_and_disconnects() {
        let (mut m, h) = mgr();
        let (tracer, events) = EventBus::memory();
        m.set_tracer(tracer);
        let ids: Vec<ClientId> = (0..3)
            .map(|i| {
                let ack = connect(&mut m, &h, &format!("j{i}"));
                add_threads(&h, ack.app, 2);
                ack.app
            })
            .collect();
        m.pump();
        let sel = m.quantum();
        // 3 connects; the one left-out job got one Block per gate.
        let evs = events.events();
        let connects = evs
            .iter()
            .filter(|e| matches!(e, TraceEvent::MgrConnect { .. }))
            .count();
        assert_eq!(connects, 3);
        let gates: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MgrGate {
                    client,
                    resumed,
                    blocks,
                    unblocks,
                    ..
                } => Some((*client, *resumed, *blocks, *unblocks)),
                _ => None,
            })
            .collect();
        assert_eq!(gates.len(), 2, "two gates of the blocked job signalled");
        let blocked = ids.iter().find(|i| !sel.contains(i)).unwrap();
        for (client, resumed, blocks, unblocks) in gates {
            assert_eq!(client, blocked.0);
            assert!(!resumed);
            assert_eq!((blocks, unblocks), (1, 0));
        }
        // Disconnect shows up too.
        h.sender()
            .send(ToManager::Disconnect { app: ids[0] })
            .unwrap();
        m.pump();
        assert!(events
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::MgrDisconnect { client } if *client == ids[0].0)));
    }

    #[test]
    fn injected_signal_inversion_is_harmless_and_traced() {
        let (mut m, h) = mgr();
        let (tracer, events) = EventBus::memory();
        m.set_tracer(tracer);
        let ack = connect(&mut m, &h, "app");
        let gates = add_threads(&h, ack.app, 2);
        m.pump();
        let sel = m.quantum();
        assert_eq!(sel, vec![ack.app]);
        assert!(!gates[0].should_block());
        // Unblock-before-Block on every gate: the counting rule makes the
        // pair cancel, so the running job keeps running.
        assert_eq!(m.inject_signal_inversion(ack.app), 2);
        for g in &gates {
            assert!(!g.should_block(), "inversion must not block a runner");
            assert_eq!(g.counts(), (1, 1));
        }
        let reorders = events
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::MgrSignalReorder { client, .. } if *client == ack.app.0))
            .count();
        assert_eq!(reorders, 2);
        // Unknown client: no gates, no events.
        assert_eq!(m.inject_signal_inversion(ClientId(999)), 0);
    }

    #[test]
    fn thread_born_into_blocked_job_starts_blocked() {
        let (mut m, h) = mgr();
        for i in 0..3 {
            let ack = connect(&mut m, &h, &format!("j{i}"));
            add_threads(&h, ack.app, 2);
        }
        m.pump();
        let sel = m.quantum();
        // Find the blocked job and give it a new thread.
        let blocked = m
            .jobs
            .iter()
            .find(|j| !sel.contains(&j.id))
            .map(|j| j.id)
            .unwrap();
        let late = add_threads(&h, blocked, 1).pop().unwrap();
        m.pump();
        assert!(late.should_block(), "late thread must inherit the block");
    }
}
