//! The shared arena: the manager's primary communication medium with each
//! application (§4).
//!
//! On the paper's system this is a shared memory page. Here it is a
//! fixed-layout 4 KiB buffer (`bytes`) behind a `parking_lot` lock, shared
//! by `Arc` — same information flow, same page discipline (a writer can
//! only publish what fits the layout), safely usable from real threads.
//!
//! Layout (little endian):
//!
//! | offset | field                 | type |
//! |-------:|-----------------------|------|
//! | 0      | magic `0xB05A_RE4A`-ish | u32 |
//! | 4      | layout version        | u32  |
//! | 8      | sequence number       | u64  |
//! | 16     | thread count          | u32  |
//! | 20     | (pad)                 | u32  |
//! | 24     | cumulative bus transactions | f64 |
//! | 32     | rate over last update interval (tx/µs, whole app) | f64 |
//! | 40     | timestamp of last update (µs)  | u64 |

use bytes::{Buf, BufMut};
use parking_lot::Mutex;
use std::sync::Arc;

/// Size of the arena page in bytes (one page, as in the paper).
pub const ARENA_PAGE_SIZE: usize = 4096;

const MAGIC: u32 = 0xB05A_0A4E;
const VERSION: u32 = 1;

/// A decoded view of the arena contents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArenaSnapshot {
    /// Publication sequence number (increments per update).
    pub seq: u64,
    /// Number of live threads the application has registered.
    pub threads: u32,
    /// Cumulative bus transactions counted by the application.
    pub total_transactions: f64,
    /// Whole-application transaction rate over the last update interval,
    /// tx/µs.
    pub rate_tx_per_us: f64,
    /// Timestamp of the last update, µs (application clock).
    pub updated_at_us: u64,
}

impl ArenaSnapshot {
    /// Per-thread rate: the application's rate equipartitioned among its
    /// threads, which is exactly the `BBW/thread` the policies consume.
    pub fn rate_per_thread(&self) -> f64 {
        if self.threads == 0 {
            0.0
        } else {
            self.rate_tx_per_us / self.threads as f64
        }
    }
}

/// The shared arena page.
#[derive(Debug, Clone)]
pub struct SharedArena {
    page: Arc<Mutex<[u8; ARENA_PAGE_SIZE]>>,
}

impl SharedArena {
    /// A freshly mapped (zeroed, then initialized) arena.
    pub fn new() -> Self {
        let arena = Self {
            page: Arc::new(Mutex::new([0u8; ARENA_PAGE_SIZE])),
        };
        arena.publish(ArenaSnapshot {
            seq: 0,
            threads: 0,
            total_transactions: 0.0,
            rate_tx_per_us: 0.0,
            updated_at_us: 0,
        });
        arena
    }

    /// Write a snapshot into the page (application side).
    pub fn publish(&self, s: ArenaSnapshot) {
        let mut page = self.page.lock();
        let mut buf = &mut page[..];
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u64_le(s.seq);
        buf.put_u32_le(s.threads);
        buf.put_u32_le(0); // pad
        buf.put_f64_le(s.total_transactions);
        buf.put_f64_le(s.rate_tx_per_us);
        buf.put_u64_le(s.updated_at_us);
    }

    /// Read the page (manager side).
    ///
    /// Returns `None` if the page does not carry a valid arena layout —
    /// the manager treats a corrupt page as "no data" rather than
    /// crashing on a misbehaving client.
    pub fn read(&self) -> Option<ArenaSnapshot> {
        let page = self.page.lock();
        let mut buf = &page[..];
        if buf.get_u32_le() != MAGIC || buf.get_u32_le() != VERSION {
            return None;
        }
        let seq = buf.get_u64_le();
        let threads = buf.get_u32_le();
        let _pad = buf.get_u32_le();
        let total_transactions = buf.get_f64_le();
        let rate_tx_per_us = buf.get_f64_le();
        let updated_at_us = buf.get_u64_le();
        Some(ArenaSnapshot {
            seq,
            threads,
            total_transactions,
            rate_tx_per_us,
            updated_at_us,
        })
    }

    /// Number of `SharedArena` handles alive (diagnostics).
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.page)
    }
}

impl Default for SharedArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_every_field() {
        let a = SharedArena::new();
        let snap = ArenaSnapshot {
            seq: 42,
            threads: 3,
            total_transactions: 123456.75,
            rate_tx_per_us: 11.65,
            updated_at_us: 999_999,
        };
        a.publish(snap);
        assert_eq!(a.read().unwrap(), snap);
    }

    #[test]
    fn fresh_arena_reads_as_zeroed_snapshot() {
        let a = SharedArena::new();
        let s = a.read().unwrap();
        assert_eq!(s.seq, 0);
        assert_eq!(s.threads, 0);
        assert_eq!(s.rate_per_thread(), 0.0);
    }

    #[test]
    fn corrupt_page_reads_none() {
        let a = SharedArena::new();
        {
            let mut page = a.page.lock();
            page[0] = 0xFF; // clobber magic
        }
        assert!(a.read().is_none());
    }

    #[test]
    fn rate_per_thread_equipartitions() {
        let s = ArenaSnapshot {
            seq: 1,
            threads: 2,
            total_transactions: 0.0,
            rate_tx_per_us: 23.3,
            updated_at_us: 0,
        };
        assert!((s.rate_per_thread() - 11.65).abs() < 1e-12);
        let z = ArenaSnapshot { threads: 0, ..s };
        assert_eq!(z.rate_per_thread(), 0.0);
    }

    #[test]
    fn clones_share_the_same_page() {
        let a = SharedArena::new();
        let b = a.clone();
        a.publish(ArenaSnapshot {
            seq: 7,
            threads: 1,
            total_transactions: 1.0,
            rate_tx_per_us: 2.0,
            updated_at_us: 3,
        });
        assert_eq!(b.read().unwrap().seq, 7);
        assert!(a.handles() >= 2);
    }

    #[test]
    fn concurrent_writers_and_readers_do_not_tear() {
        // Writers always publish self-consistent snapshots where
        // rate == seq as f64; a torn read would break that equality.
        let a = SharedArena::new();
        let w = a.clone();
        let writer = std::thread::spawn(move || {
            for i in 1..=2000u64 {
                w.publish(ArenaSnapshot {
                    seq: i,
                    threads: 2,
                    total_transactions: i as f64,
                    rate_tx_per_us: i as f64,
                    updated_at_us: i,
                });
            }
        });
        let mut last_seq = 0;
        for _ in 0..2000 {
            let s = a.read().unwrap();
            assert_eq!(s.rate_tx_per_us, s.seq as f64, "torn read");
            assert!(s.seq >= last_seq, "sequence went backwards");
            last_seq = s.seq;
        }
        writer.join().unwrap();
    }
}
