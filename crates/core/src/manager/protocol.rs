//! The connection protocol between applications and the CPU manager.
//!
//! The paper uses a UNIX socket for the initial handshake; here the
//! transport is a `crossbeam` channel. The message set mirrors the
//! paper's run-time library: connect/disconnect plus thread creation and
//! destruction interception.

use crossbeam::channel::Sender;
use std::sync::Arc;

use super::arena::SharedArena;
use super::signals::SignalGate;

/// Identifies a connected application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Messages from applications (via the run-time library) to the manager.
pub enum ToManager {
    /// Initial handshake. The manager answers on `reply` with the shared
    /// arena and sampling contract.
    Connect {
        /// Application display name.
        name: String,
        /// Where to deliver the [`ConnectAck`].
        reply: Sender<ConnectAck>,
    },
    /// The run-time library intercepted a thread creation.
    ThreadCreated {
        /// The owning application.
        app: ClientId,
        /// Gate the manager (or a forwarding sibling) will signal.
        gate: Arc<SignalGate>,
    },
    /// The run-time library intercepted a thread exit.
    ThreadExited {
        /// The owning application.
        app: ClientId,
    },
    /// The application is terminating.
    Disconnect {
        /// The departing application.
        app: ClientId,
    },
}

/// The manager's answer to [`ToManager::Connect`].
pub struct ConnectAck {
    /// The id assigned to this application.
    pub app: ClientId,
    /// The shared arena for publishing transaction-rate samples.
    pub arena: SharedArena,
    /// How often (µs) the manager expects the arena to be refreshed —
    /// the paper: twice per scheduling quantum.
    pub update_period_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    #[test]
    fn handshake_shapes_compose() {
        // A miniature manager loop answering one Connect.
        let (tx, rx) = unbounded::<ToManager>();
        let server = std::thread::spawn(move || {
            if let Ok(ToManager::Connect { name, reply }) = rx.recv() {
                assert_eq!(name, "CG");
                reply
                    .send(ConnectAck {
                        app: ClientId(1),
                        arena: SharedArena::new(),
                        update_period_us: 100_000,
                    })
                    .unwrap();
            }
        });
        let (rtx, rrx) = unbounded();
        tx.send(ToManager::Connect {
            name: "CG".into(),
            reply: rtx,
        })
        .unwrap();
        let ack = rrx.recv().unwrap();
        assert_eq!(ack.app, ClientId(1));
        assert_eq!(ack.update_period_us, 100_000);
        assert!(ack.arena.read().is_some());
        server.join().unwrap();
    }
}
