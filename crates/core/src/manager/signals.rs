//! Block/unblock signaling with the paper's inversion-tolerant rule.
//!
//! §4: *"In order to avoid side-effects from possible inversion in the
//! order block / unblock signals are sent and received, a thread blocks
//! only if the number of received block signals exceeds the corresponding
//! number of unblock signals. Such an inversion is quite probable,
//! especially if the time interval between consecutive blocks and unblocks
//! is narrow."*
//!
//! [`SignalGate`] is the per-thread embodiment: two monotone counters and
//! a condvar. `should_block()` is exactly `blocks > unblocks`; a thread
//! parked in [`SignalGate::wait_while_blocked`] wakes as soon as the
//! predicate turns false — including the inversion case where the unblock
//! arrives *before* the block (the thread then never parks at all).

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A scheduling signal from the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Stop running at the next checkpoint.
    Block,
    /// Resume (or cancel a pending block).
    Unblock,
}

/// The per-thread block/unblock counting gate.
#[derive(Debug, Default)]
pub struct SignalGate {
    blocks: AtomicU64,
    unblocks: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SignalGate {
    /// A gate with no signals delivered (thread runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a signal (manager side, or a sibling thread forwarding).
    pub fn deliver(&self, s: Signal) {
        // The counter update must happen under the lock so a waiter cannot
        // observe the stale predicate between its check and its park.
        let guard = self.lock.lock();
        match s {
            Signal::Block => self.blocks.fetch_add(1, Ordering::SeqCst),
            Signal::Unblock => self.unblocks.fetch_add(1, Ordering::SeqCst),
        };
        drop(guard);
        self.cv.notify_all();
    }

    /// The paper's rule: block only if strictly more blocks than unblocks
    /// have been received.
    pub fn should_block(&self) -> bool {
        self.blocks.load(Ordering::SeqCst) > self.unblocks.load(Ordering::SeqCst)
    }

    /// Signal counts `(blocks, unblocks)` received so far (diagnostics).
    pub fn counts(&self) -> (u64, u64) {
        (
            self.blocks.load(Ordering::SeqCst),
            self.unblocks.load(Ordering::SeqCst),
        )
    }

    /// Park the calling thread until `should_block()` is false.
    /// Returns immediately if the thread is not blocked.
    pub fn wait_while_blocked(&self) {
        let mut guard = self.lock.lock();
        while self.should_block() {
            self.cv.wait(&mut guard);
        }
    }

    /// Like [`Self::wait_while_blocked`] but gives up after `timeout`.
    /// Returns `true` if the thread is clear to run, `false` on timeout.
    pub fn wait_while_blocked_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.lock.lock();
        while self.should_block() {
            if self.cv.wait_until(&mut guard, deadline).timed_out() {
                return !self.should_block();
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn fresh_gate_is_open() {
        let g = SignalGate::new();
        assert!(!g.should_block());
        g.wait_while_blocked(); // must not hang
    }

    #[test]
    fn block_then_unblock_reopens() {
        let g = SignalGate::new();
        g.deliver(Signal::Block);
        assert!(g.should_block());
        g.deliver(Signal::Unblock);
        assert!(!g.should_block());
    }

    #[test]
    fn inverted_delivery_never_blocks() {
        // The paper's scenario: the unblock for quantum N+1 overtakes the
        // block for quantum N. Counting makes the net effect zero.
        let g = SignalGate::new();
        g.deliver(Signal::Unblock);
        assert!(!g.should_block());
        g.deliver(Signal::Block);
        assert!(!g.should_block(), "inversion must cancel out");
        assert_eq!(g.counts(), (1, 1));
    }

    #[test]
    fn repeated_blocks_need_matching_unblocks() {
        let g = SignalGate::new();
        g.deliver(Signal::Block);
        g.deliver(Signal::Block);
        g.deliver(Signal::Unblock);
        assert!(g.should_block(), "2 blocks vs 1 unblock stays blocked");
        g.deliver(Signal::Unblock);
        assert!(!g.should_block());
    }

    #[test]
    fn parked_thread_wakes_on_unblock() {
        let g = Arc::new(SignalGate::new());
        g.deliver(Signal::Block);
        let woke = Arc::new(AtomicBool::new(false));
        let (g2, woke2) = (g.clone(), woke.clone());
        let t = std::thread::spawn(move || {
            g2.wait_while_blocked();
            woke2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(!woke.load(Ordering::SeqCst), "thread ran while blocked");
        g.deliver(Signal::Unblock);
        t.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn timeout_wait_reports_still_blocked() {
        let g = SignalGate::new();
        g.deliver(Signal::Block);
        assert!(!g.wait_while_blocked_timeout(Duration::from_millis(20)));
        g.deliver(Signal::Unblock);
        assert!(g.wait_while_blocked_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn concurrent_signal_storm_balances_exactly() {
        // Many block/unblock pairs delivered from racing threads leave the
        // gate open (equal counts), regardless of interleaving.
        let g = Arc::new(SignalGate::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    g.deliver(Signal::Block);
                    g.deliver(Signal::Unblock);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.counts(), (2000, 2000));
        assert!(!g.should_block());
    }
}
