//! The application-side run-time library (§4).
//!
//! The paper: *"A run-time library which accompanies the CPU manager
//! offers all the necessary functionality for the cooperation between the
//! CPU manager and applications. The modifications required to the source
//! code of applications are limited to the addition of calls for
//! connection and disconnection and to the interception of thread creation
//! and destruction."*
//!
//! [`AppRuntime`] is that library: `connect` performs the handshake,
//! [`AppRuntime::register_thread`] intercepts thread creation and hands
//! the worker a [`ThreadHandle`], through which the worker
//!
//! * counts its own bus transactions ([`ThreadHandle::count_transactions`]
//!   — the software stand-in for the hardware counter), and
//! * periodically reaches a **checkpoint** ([`ThreadHandle::checkpoint`])
//!   where a pending block signal takes effect (the user-level analogue of
//!   signal delivery interrupting execution).
//!
//! [`AppRuntime::publish_sample`] aggregates all thread counters and
//! writes the application's transaction rate to the shared arena — the
//! paper does this twice per scheduling quantum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::unbounded;

use super::arena::{ArenaSnapshot, SharedArena};
use super::protocol::{ClientId, ToManager};
use super::server::ManagerHandle;
use super::signals::{Signal, SignalGate};

/// Errors the run-time library reports to the application.
///
/// The paper's manager is a separate server process; it can die (or be
/// restarted by the operator) while applications are mid-flight. The
/// run-time library surfaces that as a recoverable error instead of
/// panicking inside application code, so an application can fall back to
/// native scheduling — exactly what happens on the real platform when the
/// CPU manager is not running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManagerError {
    /// The manager hung up: its channel end is gone, so the handshake or
    /// notification could not be delivered (or its acknowledgement never
    /// arrived).
    Disconnected,
}

impl std::fmt::Display for ManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagerError::Disconnected => {
                write!(f, "the CPU manager is gone (channel disconnected)")
            }
        }
    }
}

impl std::error::Error for ManagerError {}

/// Per-thread state handed to a worker thread.
#[derive(Debug, Clone)]
pub struct ThreadHandle {
    gate: Arc<SignalGate>,
    transactions: Arc<AtomicU64>,
}

impl ThreadHandle {
    /// Count `n` bus transactions performed by this thread since the last
    /// call (software performance counter).
    pub fn count_transactions(&self, n: u64) {
        self.transactions.fetch_add(n, Ordering::Relaxed);
    }

    /// A scheduling checkpoint: parks the thread while its job is blocked.
    pub fn checkpoint(&self) {
        self.gate.wait_while_blocked();
    }

    /// Whether the thread would park at a checkpoint right now.
    pub fn is_blocked(&self) -> bool {
        self.gate.should_block()
    }

    /// The thread's gate (for the manager or forwarding siblings).
    pub fn gate(&self) -> Arc<SignalGate> {
        self.gate.clone()
    }
}

/// A connection awaiting the manager's acknowledgement.
pub struct PendingConnect {
    rx: crossbeam::channel::Receiver<super::protocol::ConnectAck>,
    to_manager: crossbeam::channel::Sender<ToManager>,
}

impl PendingConnect {
    /// Phase 2: receive the acknowledgement (the manager must have pumped
    /// since [`AppRuntime::request_connect`]).
    ///
    /// Returns [`ManagerError::Disconnected`] when the manager died before
    /// acknowledging.
    pub fn complete(self) -> Result<AppRuntime, ManagerError> {
        let ack = self.rx.recv().map_err(|_| ManagerError::Disconnected)?;
        Ok(AppRuntime {
            id: ack.app,
            arena: ack.arena,
            to_manager: self.to_manager,
            threads: Vec::new(),
            update_period_us: ack.update_period_us,
            seq: 0,
            last_total: 0.0,
            last_publish_us: 0,
            last_rate: 0.0,
        })
    }
}

/// The per-application runtime.
pub struct AppRuntime {
    id: ClientId,
    arena: SharedArena,
    to_manager: crossbeam::channel::Sender<ToManager>,
    threads: Vec<ThreadHandle>,
    update_period_us: u64,
    seq: u64,
    last_total: f64,
    last_publish_us: u64,
    last_rate: f64,
}

impl AppRuntime {
    /// Connect to the manager (the paper's `connection` call). Blocks
    /// until the manager acknowledges with the shared arena — so the
    /// manager must be pumping on another thread (as in
    /// `examples/cpu_manager_demo.rs`). Single-threaded callers should use
    /// [`AppRuntime::request_connect`] and pump between the two phases.
    ///
    /// Returns [`ManagerError::Disconnected`] when the manager is gone.
    pub fn connect(handle: &ManagerHandle, name: impl Into<String>) -> Result<Self, ManagerError> {
        Self::request_connect(handle, name)?.complete()
    }

    /// Phase 1 of a connection: send the handshake without waiting.
    ///
    /// Returns [`ManagerError::Disconnected`] when the manager is gone.
    pub fn request_connect(
        handle: &ManagerHandle,
        name: impl Into<String>,
    ) -> Result<PendingConnect, ManagerError> {
        let (tx, rx) = unbounded();
        handle
            .sender()
            .send(ToManager::Connect {
                name: name.into(),
                reply: tx,
            })
            .map_err(|_| ManagerError::Disconnected)?;
        Ok(PendingConnect {
            rx,
            to_manager: handle.sender(),
        })
    }

    /// This application's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// How often (µs) the manager expects arena updates.
    pub fn update_period_us(&self) -> u64 {
        self.update_period_us
    }

    /// Intercept a thread creation: registers a gate with the manager and
    /// returns the worker's handle.
    ///
    /// Returns [`ManagerError::Disconnected`] when the manager is gone; the
    /// thread is then *not* tracked, so the application keeps running under
    /// native scheduling.
    pub fn register_thread(&mut self) -> Result<ThreadHandle, ManagerError> {
        let h = ThreadHandle {
            gate: Arc::new(SignalGate::new()),
            transactions: Arc::new(AtomicU64::new(0)),
        };
        self.to_manager
            .send(ToManager::ThreadCreated {
                app: self.id,
                gate: h.gate.clone(),
            })
            .map_err(|_| ManagerError::Disconnected)?;
        self.threads.push(h.clone());
        Ok(h)
    }

    /// Intercept a thread destruction.
    pub fn thread_exited(&mut self) {
        self.threads.pop();
        let _ = self
            .to_manager
            .send(ToManager::ThreadExited { app: self.id });
    }

    /// The paper's signal forwarding: the manager signals one thread; that
    /// thread forwards the signal to every sibling. Calling this with the
    /// received signal reproduces the fan-out.
    pub fn forward(&self, sig: Signal, skip_first: bool) {
        for (i, t) in self.threads.iter().enumerate() {
            if skip_first && i == 0 {
                continue;
            }
            t.gate.deliver(sig);
        }
    }

    /// Poll all thread counters, accumulate, and publish the application's
    /// transaction rate to the shared arena (the twice-per-quantum update).
    /// `now_us` is the application's clock.
    pub fn publish_sample(&mut self, now_us: u64) -> ArenaSnapshot {
        let total: f64 = self
            .threads
            .iter()
            .map(|t| t.transactions.load(Ordering::Relaxed) as f64)
            .sum();
        let dt = now_us.saturating_sub(self.last_publish_us);
        let rate = if dt == 0 {
            // Two publishes in the same microsecond (trivial under a
            // virtual clock): no interval to rate over, so carry the
            // previous rate instead of publishing a spurious 0 that would
            // drag the estimator's window down.
            self.last_rate
        } else {
            (total - self.last_total).max(0.0) / dt as f64
        };
        self.seq += 1;
        let snap = ArenaSnapshot {
            seq: self.seq,
            threads: self.threads.len() as u32,
            total_transactions: total,
            rate_tx_per_us: rate,
            updated_at_us: now_us,
        };
        self.arena.publish(snap);
        self.last_total = total;
        self.last_publish_us = now_us;
        self.last_rate = rate;
        snap
    }

    /// Disconnect from the manager (the paper's `disconnection` call).
    pub fn disconnect(self) {
        let _ = self.to_manager.send(ToManager::Disconnect { app: self.id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::LatestQuantumEstimator;
    use crate::manager::server::{CpuManager, ManagerConfig};

    fn pair() -> (CpuManager, ManagerHandle) {
        CpuManager::new(
            ManagerConfig::default(),
            Box::new(LatestQuantumEstimator::new()),
        )
    }

    /// Single-threaded connect: request, pump the manager, complete.
    fn connect(m: &mut CpuManager, h: &ManagerHandle, name: &str) -> AppRuntime {
        let p = AppRuntime::request_connect(h, name).expect("manager alive");
        m.pump();
        p.complete().expect("manager alive")
    }

    fn register(app: &mut AppRuntime) -> ThreadHandle {
        app.register_thread().expect("manager alive")
    }

    #[test]
    fn connect_and_register_threads() {
        let (mut m, h) = pair();
        let mut app = connect(&mut m, &h, "demo");
        assert_eq!(app.update_period_us(), 100_000);
        let _t1 = register(&mut app);
        let _t2 = register(&mut app);
        m.pump();
        assert_eq!(m.job_names(), vec!["demo".to_string()]);
    }

    #[test]
    fn connect_against_dead_manager_reports_disconnected() {
        let (m, h) = pair();
        drop(m);
        // Phase-1 send still succeeds (the channel buffers), but the ack
        // can never arrive.
        match AppRuntime::request_connect(&h, "orphan") {
            Ok(p) => assert_eq!(
                p.complete().map(|_| ()).unwrap_err(),
                ManagerError::Disconnected
            ),
            Err(e) => assert_eq!(e, ManagerError::Disconnected),
        }
    }

    #[test]
    fn register_thread_after_manager_death_reports_disconnected() {
        let (mut m, h) = pair();
        let mut app = connect(&mut m, &h, "demo");
        let _t = register(&mut app);
        drop(m);
        drop(h);
        let err = app.register_thread().unwrap_err();
        assert_eq!(err, ManagerError::Disconnected);
        // Already-registered threads keep working (native-scheduling
        // fallback: counters count, checkpoints don't park).
        let t = app.threads[0].clone();
        t.count_transactions(5);
        assert!(!t.is_blocked());
        t.checkpoint();
        // Disconnect on a dead channel must not panic either.
        app.disconnect();
    }

    #[test]
    fn manager_error_displays_and_is_std_error() {
        let e = ManagerError::Disconnected;
        assert!(e.to_string().contains("manager is gone"));
        let _dyn_err: &dyn std::error::Error = &e;
    }

    #[test]
    fn publish_sample_computes_rate_from_counter_deltas() {
        let (mut m, h) = pair();
        let mut app = connect(&mut m, &h, "demo");
        let t1 = register(&mut app);
        let t2 = register(&mut app);
        m.pump();
        t1.count_transactions(600_000);
        t2.count_transactions(600_000);
        let s = app.publish_sample(100_000);
        // 1.2 M tx over 100 ms = 12 tx/µs for the app, 6 per thread.
        assert!((s.rate_tx_per_us - 12.0).abs() < 1e-9);
        assert!((s.rate_per_thread() - 6.0).abs() < 1e-9);
        // Second interval with no traffic → rate 0.
        let s2 = app.publish_sample(200_000);
        assert_eq!(s2.rate_tx_per_us, 0.0);
        assert_eq!(s2.seq, 2);
    }

    #[test]
    fn zero_dt_publish_carries_previous_rate() {
        let (mut m, h) = pair();
        let mut app = connect(&mut m, &h, "demo");
        let t = register(&mut app);
        m.pump();
        t.count_transactions(600_000);
        let s1 = app.publish_sample(100_000);
        assert!((s1.rate_tx_per_us - 6.0).abs() < 1e-9);
        // A second publish at the same microsecond has no interval to
        // rate over: it must repeat the previous rate, not report 0
        // (which would poison the estimator's window).
        t.count_transactions(50);
        let s2 = app.publish_sample(100_000);
        assert_eq!(s2.rate_tx_per_us, s1.rate_tx_per_us);
        assert_eq!(s2.seq, 2);
        // The next real interval rates normally again.
        t.count_transactions(50);
        let s3 = app.publish_sample(100_010);
        assert!((s3.rate_tx_per_us - 5.0).abs() < 1e-9);
        // The very first publish at t=0 also has dt == 0; with no prior
        // rate it reports 0 and stays finite.
        let mut fresh = connect(&mut m, &h, "fresh");
        let tf = register(&mut fresh);
        m.pump();
        tf.count_transactions(1_000);
        let s0 = fresh.publish_sample(0);
        assert_eq!(s0.rate_tx_per_us, 0.0);
        assert!(s0.rate_tx_per_us.is_finite());
    }

    #[test]
    fn forward_reaches_siblings() {
        let (mut m, h) = pair();
        let mut app = connect(&mut m, &h, "demo");
        let t1 = register(&mut app);
        let t2 = register(&mut app);
        let t3 = register(&mut app);
        // Manager signals thread 1; it forwards to siblings only.
        t1.gate().deliver(Signal::Block);
        app.forward(Signal::Block, true);
        assert!(t1.is_blocked() && t2.is_blocked() && t3.is_blocked());
        t1.gate().deliver(Signal::Unblock);
        app.forward(Signal::Unblock, true);
        assert!(!t1.is_blocked() && !t2.is_blocked() && !t3.is_blocked());
    }

    #[test]
    fn end_to_end_real_threads_obey_the_manager() {
        use std::sync::atomic::AtomicBool;
        use std::time::Duration;

        let (mut m, h) = pair();
        // Two 2-thread apps + one more so someone must be blocked.
        let mut apps: Vec<AppRuntime> = (0..3)
            .map(|i| connect(&mut m, &h, &format!("app{i}")))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let progress: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (i, app) in apps.iter_mut().enumerate() {
            for _ in 0..2 {
                let th = register(app);
                let stop = stop.clone();
                let prog = progress[i].clone();
                workers.push(std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        th.count_transactions(10);
                        prog.fetch_add(1, Ordering::SeqCst);
                        th.checkpoint();
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }));
            }
        }
        m.pump();
        let sel = m.quantum();
        assert_eq!(sel.len(), 2);
        let blocked_idx = (0..3)
            .find(|i| !sel.contains(&apps[*i].id()))
            .expect("one app blocked");
        // Give workers time to hit their checkpoints.
        std::thread::sleep(Duration::from_millis(80));
        let before = progress[blocked_idx].load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(80));
        let after = progress[blocked_idx].load(Ordering::SeqCst);
        assert!(
            after - before <= 2,
            "blocked app kept running: {before} -> {after}"
        );
        // Running apps kept making progress.
        let run_idx = (0..3).find(|i| sel.contains(&apps[*i].id())).unwrap();
        let r_before = progress[run_idx].load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(80));
        let r_after = progress[run_idx].load(Ordering::SeqCst);
        assert!(r_after > r_before, "running app made no progress");

        stop.store(true, Ordering::SeqCst);
        // Unblock everyone so workers can observe stop.
        for app in &apps {
            let _ = app;
        }
        for app in &apps {
            if !sel.contains(&app.id()) {
                app.forward(Signal::Unblock, false);
            }
        }
        for w in workers {
            w.join().unwrap();
        }
    }
}
