//! The user-level CPU manager (§4), as real concurrent code.
//!
//! The paper implements its policies *without kernel changes*: a server
//! process (the CPU manager) to which applications connect over a UNIX
//! socket. For each connection the manager creates a **shared arena** — a
//! shared memory page through which the application publishes its bus
//! transaction rate (updated twice per scheduling quantum) — and controls
//! execution by sending **block/unblock signals**; a thread blocks only if
//! the number of block signals received exceeds the number of unblock
//! signals, which tolerates signal reordering ("inversion") when quanta
//! are short. A run-time library intercepts thread creation/destruction
//! and forwards signals to sibling threads.
//!
//! This module reproduces each artifact:
//!
//! * [`protocol`] — connect/disconnect/thread lifecycle messages (the
//!   UNIX-socket substitute is a `crossbeam` channel);
//! * [`arena`] — the shared arena as a fixed-layout 4 KiB page, encoded
//!   and decoded with `bytes`, behind a lock (the shared-mapping
//!   substitute); [`seqlock`] is the lock-free variant (single writer,
//!   wait-free readers) matching the raw-page semantics of the original;
//! * [`signals`] — the block/unblock counting gate with condvar parking
//!   for real OS threads, tolerant to signal inversion by construction;
//! * [`client`] — the run-time library side: connect, register threads,
//!   count transactions, publish arena samples, obey the gate;
//! * [`server`] — the manager proper: circular job list, per-quantum
//!   sampling of every arena, the shared [`crate::selection`] algorithm,
//!   and signal fan-out.
//!
//! Everything here runs with *real* threads (see
//! `examples/cpu_manager_demo.rs`); the deterministic simulator experiments
//! use the [`crate::bus_aware`] stacks, which share the estimator and
//! selection logic with this manager.

pub mod arena;
pub mod client;
pub mod protocol;
pub mod seqlock;
pub mod server;
pub mod signals;

pub use arena::{ArenaSnapshot, SharedArena, ARENA_PAGE_SIZE};
pub use client::{AppRuntime, ManagerError, ThreadHandle};
pub use protocol::{ClientId, ConnectAck, ToManager};
pub use seqlock::SeqlockArena;
pub use server::{CpuManager, ManagerConfig, ManagerHandle};
pub use signals::{Signal, SignalGate};
