//! A lock-free shared arena: the seqlock variant.
//!
//! The paper's shared arena is a raw memory page written by the
//! application and read by the manager with no lock at all — on a real
//! system a mutex in that page would let a blocked application thread
//! wedge the manager. [`SeqlockArena`] reproduces that property safely:
//!
//! * the **writer** (one application-side publisher) increments a
//!   sequence counter to an odd value, stores the fields, then increments
//!   it again to even — all with `Release` stores;
//! * **readers** (the manager, any diagnostics) read the sequence with
//!   `Acquire`, copy the fields, re-read the sequence, and retry if it
//!   changed or was odd mid-copy.
//!
//! Readers never block the writer and vice versa; a torn snapshot is
//! impossible because the sequence check brackets the field reads. The
//! implementation is `forbid(unsafe_code)`-clean: fields live in
//! `AtomicU64`s (f64s as bit patterns), so even the racing accesses are
//! data-race-free by construction — the seqlock protocol provides
//! *consistency* across fields on top of per-field atomicity.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use super::arena::ArenaSnapshot;

#[derive(Debug, Default)]
struct Fields {
    seq: AtomicU64,
    snap_seq: AtomicU64,
    threads: AtomicU64,
    total_tx_bits: AtomicU64,
    rate_bits: AtomicU64,
    updated_at: AtomicU64,
}

/// The lock-free arena. Cloning shares the underlying page.
#[derive(Debug, Clone, Default)]
pub struct SeqlockArena {
    f: Arc<Fields>,
}

impl SeqlockArena {
    /// A fresh (zeroed) arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a snapshot (single-writer: the application's sampler).
    pub fn publish(&self, s: ArenaSnapshot) {
        let f = &self.f;
        // Enter the write-side critical section: odd sequence. The
        // release fence keeps the odd marker ordered *before* the field
        // stores (a plain Release store would only order what precedes
        // it — the field stores could be hoisted above the marker).
        let seq = f.seq.load(Ordering::Relaxed);
        f.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        // Field stores may be reordered among themselves — each is atomic,
        // and readers discard anything observed under an odd/changed seq.
        f.snap_seq.store(s.seq, Ordering::Relaxed);
        f.threads.store(s.threads as u64, Ordering::Relaxed);
        f.total_tx_bits
            .store(s.total_transactions.to_bits(), Ordering::Relaxed);
        f.rate_bits
            .store(s.rate_tx_per_us.to_bits(), Ordering::Relaxed);
        f.updated_at.store(s.updated_at_us, Ordering::Relaxed);
        // Leave: even sequence; Release publishes all field stores.
        f.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Fault injection for the runtime auditor (`busbw-audit`): store a
    /// new rate **without** the odd/even sequence bracket — the torn
    /// write the seqlock protocol exists to prevent. Readers observe the
    /// mutated field under an unchanged even sequence, which the audit
    /// arena-coherence check flags. Never call this outside seeded-fault
    /// tests.
    #[doc(hidden)]
    pub fn publish_torn_rate(&self, rate_tx_per_us: f64) {
        self.f
            .rate_bits
            .store(rate_tx_per_us.to_bits(), Ordering::Release);
    }

    /// Read a consistent snapshot (any number of concurrent readers).
    /// Lock-free: retries while a write is in flight.
    pub fn read(&self) -> ArenaSnapshot {
        let f = &self.f;
        loop {
            let s1 = f.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = ArenaSnapshot {
                seq: f.snap_seq.load(Ordering::Relaxed),
                threads: f.threads.load(Ordering::Relaxed) as u32,
                total_transactions: f64::from_bits(f.total_tx_bits.load(Ordering::Relaxed)),
                rate_tx_per_us: f64::from_bits(f.rate_bits.load(Ordering::Relaxed)),
                updated_at_us: f.updated_at.load(Ordering::Relaxed),
            };
            // The acquire fence keeps the field loads ordered *before*
            // the validating re-read of the sequence.
            fence(Ordering::Acquire);
            let s2 = f.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return snap;
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(i: u64) -> ArenaSnapshot {
        ArenaSnapshot {
            seq: i,
            threads: 2,
            total_transactions: i as f64 * 10.0,
            rate_tx_per_us: i as f64,
            updated_at_us: i * 100,
        }
    }

    #[test]
    fn roundtrip() {
        let a = SeqlockArena::new();
        a.publish(snap(7));
        assert_eq!(a.read(), snap(7));
    }

    #[test]
    fn fresh_arena_reads_zeroed() {
        let a = SeqlockArena::new();
        let s = a.read();
        assert_eq!(s.seq, 0);
        assert_eq!(s.rate_tx_per_us, 0.0);
    }

    #[test]
    fn clones_share_the_page() {
        let a = SeqlockArena::new();
        let b = a.clone();
        a.publish(snap(3));
        assert_eq!(b.read(), snap(3));
    }

    #[test]
    fn concurrent_reads_are_never_torn() {
        // The writer publishes internally-consistent snapshots where
        // every field is derived from `seq`; any torn read breaks the
        // relation. Hammer it from several reader threads.
        let a = SeqlockArena::new();
        a.publish(snap(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let total_reads = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let a = a.clone();
            let stop = stop.clone();
            let total_reads = total_reads.clone();
            readers.push(std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let s = a.read();
                    assert_eq!(s.total_transactions, s.seq as f64 * 10.0, "torn");
                    assert_eq!(s.rate_tx_per_us, s.seq as f64, "torn");
                    assert_eq!(s.updated_at_us, s.seq * 100, "torn");
                    assert!(s.seq >= last, "went backwards");
                    last = s.seq;
                    total_reads.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        // Keep publishing until the readers collectively performed a
        // healthy number of concurrent reads (bounded backstop).
        let mut i = 2u64;
        while total_reads.load(Ordering::Relaxed) < 30_000 && i < 50_000_000 {
            a.publish(snap(i));
            i += 1;
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader");
        }
        assert!(total_reads.load(Ordering::Relaxed) >= 30_000);
    }

    #[test]
    fn matches_the_locked_arena_semantics() {
        use crate::manager::arena::SharedArena;
        let locked = SharedArena::new();
        let lockfree = SeqlockArena::new();
        for i in [1u64, 5, 9] {
            locked.publish(snap(i));
            lockfree.publish(snap(i));
            assert_eq!(locked.read().unwrap(), lockfree.read());
        }
    }
}
