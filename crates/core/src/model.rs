//! Model-driven scheduling — the paper's §6 future work, implemented.
//!
//! §6: *"we will derive analytic or empirical models of the effect of
//! sharing resources such as the bus … re-formulate the multiprocessor
//! scheduling problem as a multi-parametric optimization problem and
//! derive practical model-driven scheduling algorithms."*
//!
//! [`ModelDrivenScheduler`] does exactly that at quantum granularity:
//!
//! 1. **Measure** like the paper's policies (reconstructed per-thread
//!    bandwidth requirements, see [`crate::reconstruct`]).
//! 2. **Model**: for any candidate gang set, predict each thread's speed
//!    under the shared-bus dilation model
//!    `s_i = 1 / ((1 − µ̂_i) + µ̂_i·λ)` with λ solving
//!    `Σ d_i·s_i = C` at saturation. Memory-boundness µ̂ is not
//!    observable from counters, so an empirical curve maps demand to µ̂
//!    (fit to the paper's application population; see [`mu_hat`]).
//! 3. **Optimize**: enumerate feasible admission sets (exact up to
//!    [`ModelDrivenScheduler::EXACT_ENUMERATION_LIMIT`] jobs, greedy
//!    marginal-gain beyond) and pick the set maximizing predicted useful
//!    progress, weighted by a starvation-ageing factor so no job waits
//!    forever (replacing the head-of-list guarantee of the §4 policies).
//!
//! This is a *comparator*, not a reproduction artifact: it quantifies how
//! much headroom the paper's O(jobs²) heuristic leaves on the table.

use std::collections::BTreeMap;

use busbw_perfmon::EventKind;
use busbw_sim::{AppId, Decision, MachineView, Scheduler, SimTime};

use crate::reconstruct::DemandTracker;

/// Empirical demand → memory-boundness curve for the paper's application
/// population: light codes (< 1 tx/µs/thread) are nearly compute bound,
/// the saturating quartet (≈ 10–12 tx/µs/thread) is ~0.8 memory bound,
/// and a streaming microbenchmark (23.6) is ~1. Piecewise-linear, clamped.
pub fn mu_hat(demand_per_thread: f64) -> f64 {
    (0.05 + 0.075 * demand_per_thread).clamp(0.02, 0.98)
}

/// Predict the aggregate progress of one candidate set.
///
/// `jobs` are `(width, demand_per_thread, weight)`; returns the sum over
/// threads of `speed × weight` under the dilation model with capacity
/// `cap`.
pub fn predict_set_value(jobs: &[(usize, f64, f64)], cap: f64) -> f64 {
    let total_demand: f64 = jobs.iter().map(|&(w, d, _)| w as f64 * d).sum();
    // Solve Σ w·d/((1−µ)+µλ) = cap for λ ≥ 1 (bisection; monotone).
    let issued = |lambda: f64| -> f64 {
        jobs.iter()
            .map(|&(w, d, _)| {
                let mu = mu_hat(d);
                w as f64 * d / ((1.0 - mu) + mu * lambda)
            })
            .sum()
    };
    let lambda = if total_demand <= cap {
        1.0
    } else {
        let (mut lo, mut hi) = (1.0, 2.0);
        while issued(hi) > cap {
            hi *= 2.0;
            if hi > 1e9 {
                break;
            }
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if issued(mid) > cap {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    jobs.iter()
        .map(|&(w, d, weight)| {
            let mu = mu_hat(d);
            let speed = 1.0 / ((1.0 - mu) + mu * lambda);
            w as f64 * speed * weight
        })
        .sum()
}

/// The model-driven comparator scheduler.
pub struct ModelDrivenScheduler {
    quantum_us: u64,
    /// Starvation ageing: each quantum a job waits multiplies its weight
    /// by `(1 + aging)`.
    aging: f64,
    demand: DemandTracker,
    waited: BTreeMap<AppId, u32>,
    running: Vec<AppId>,
    snapshot: BTreeMap<AppId, f64>,
    last_boundary_us: SimTime,
    dilation_at_boundary: f64,
}

impl ModelDrivenScheduler {
    /// Beyond this many live jobs the optimizer switches from exact subset
    /// enumeration to greedy marginal gain.
    pub const EXACT_ENUMERATION_LIMIT: usize = 14;

    /// A model-driven scheduler with the paper's 200 ms quantum and a
    /// moderate ageing factor.
    pub fn new() -> Self {
        Self::with_params(200_000, 0.5)
    }

    /// Custom quantum and ageing factor.
    pub fn with_params(quantum_us: u64, aging: f64) -> Self {
        assert!(quantum_us > 0, "quantum must be positive");
        assert!(aging >= 0.0, "aging must be non-negative");
        Self {
            quantum_us,
            aging,
            demand: DemandTracker::new(),
            waited: BTreeMap::new(),
            running: Vec::new(),
            snapshot: BTreeMap::new(),
            last_boundary_us: 0,
            dilation_at_boundary: 0.0,
        }
    }

    fn app_tx(view: &MachineView<'_>, app: AppId) -> f64 {
        view.app(app)
            .map(|a| {
                a.threads
                    .iter()
                    .map(|t| view.registry.total(t.key(), EventKind::BusTransactions))
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Pick the best feasible set among `jobs` = (app, width, demand,
    /// weight) given `cpus` processors and bus capacity `cap`.
    fn optimize(jobs: &[(AppId, usize, f64, f64)], cpus: usize, cap: f64) -> Vec<AppId> {
        if jobs.is_empty() {
            return Vec::new();
        }
        if jobs.len() <= Self::EXACT_ENUMERATION_LIMIT {
            // Exact enumeration over subsets that fit.
            let n = jobs.len();
            let mut best: (f64, Vec<AppId>) = (-1.0, Vec::new());
            for mask in 1u32..(1 << n) {
                let mut width = 0usize;
                for (i, j) in jobs.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        width += j.1;
                    }
                }
                if width > cpus {
                    continue;
                }
                let set: Vec<(usize, f64, f64)> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &(_, w, d, wt))| (w, d, wt))
                    .collect();
                let v = predict_set_value(&set, cap);
                if v > best.0 {
                    best = (
                        v,
                        jobs.iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &(a, ..))| a)
                            .collect(),
                    );
                }
            }
            best.1
        } else {
            // Greedy marginal gain.
            let mut chosen: Vec<usize> = Vec::new();
            let mut free = cpus;
            loop {
                let mut best: Option<(f64, usize)> = None;
                for (i, &(_, w, _, _)) in jobs.iter().enumerate() {
                    if chosen.contains(&i) || w > free || w == 0 {
                        continue;
                    }
                    let mut set: Vec<(usize, f64, f64)> = chosen
                        .iter()
                        .map(|&j| (jobs[j].1, jobs[j].2, jobs[j].3))
                        .collect();
                    set.push((jobs[i].1, jobs[i].2, jobs[i].3));
                    let v = predict_set_value(&set, cap);
                    if best.is_none_or(|(bv, _)| v > bv) {
                        best = Some((v, i));
                    }
                }
                match best {
                    Some((_, i)) => {
                        free -= jobs[i].1;
                        chosen.push(i);
                    }
                    None => break,
                }
            }
            chosen.into_iter().map(|i| jobs[i].0).collect()
        }
    }
}

impl Default for ModelDrivenScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for ModelDrivenScheduler {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        // Measure the ending quantum (same reconstruction as the paper's
        // policies).
        let dt = view.now.saturating_sub(self.last_boundary_us);
        if dt > 0 {
            let lambda =
                ((view.dilation_integral - self.dilation_at_boundary) / dt as f64).max(1.0);
            for &app in &self.running {
                let Some(info) = view.app(app) else { continue };
                let total = Self::app_tx(view, app);
                let before = self.snapshot.get(&app).copied().unwrap_or(0.0);
                let per_thread = (total - before).max(0.0) / dt as f64 / info.width().max(1) as f64;
                self.demand.observe(app, per_thread, lambda);
            }
        }

        // Live-job bookkeeping and ageing.
        let live = view.live_apps();
        self.waited.retain(|a, _| live.contains(a));
        for &a in &live {
            self.waited.entry(a).or_insert(0);
        }

        let jobs: Vec<(AppId, usize, f64, f64)> = live
            .iter()
            .filter_map(|&a| {
                view.app(a).map(|info| {
                    let weight = (1.0 + self.aging).powi(self.waited[&a] as i32);
                    (a, info.width(), self.demand.estimate(a), weight)
                })
            })
            .collect();

        let selected = Self::optimize(&jobs, view.num_cpus, view.bus_capacity);

        for &a in &live {
            if selected.contains(&a) {
                self.waited.insert(a, 0);
            } else {
                *self.waited.entry(a).or_insert(0) += 1;
            }
        }
        for &app in &selected {
            self.snapshot.insert(app, Self::app_tx(view, app));
        }
        self.running = selected.clone();
        self.last_boundary_us = view.now;
        self.dilation_at_boundary = view.dilation_integral;

        Decision {
            assignments: crate::pipeline::place_packed(view, &selected),
            next_resched_in_us: self.quantum_us,
            sample_period_us: None,
        }
    }

    fn name(&self) -> &str {
        "ModelDriven"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, StopCondition, ThreadSpec, XEON_4WAY};

    #[test]
    fn mu_hat_is_monotone_and_clamped() {
        assert!(mu_hat(0.0) >= 0.02);
        assert!(mu_hat(0.2) < mu_hat(5.0));
        assert!(mu_hat(5.0) < mu_hat(12.0));
        assert_eq!(mu_hat(100.0), 0.98);
    }

    #[test]
    fn predict_prefers_unsaturated_sets() {
        // Two heavy jobs together saturate; heavy + idle does not. The
        // model must value heavy+idle higher per... actually aggregate
        // progress: {heavy(2×11), idle(2×0.1)} vs {heavy, heavy}.
        let heavy_idle = predict_set_value(&[(2, 11.0, 1.0), (2, 0.1, 1.0)], 29.5);
        let heavy_heavy = predict_set_value(&[(2, 11.0, 1.0), (2, 11.0, 1.0)], 29.5);
        assert!(heavy_idle > heavy_heavy, "{heavy_idle} vs {heavy_heavy}");
    }

    #[test]
    fn predict_empty_set_is_zero() {
        assert_eq!(predict_set_value(&[], 29.5), 0.0);
    }

    #[test]
    fn optimizer_fills_processors_when_free() {
        let jobs = vec![
            (AppId(0), 2, 1.0, 1.0),
            (AppId(1), 2, 1.0, 1.0),
            (AppId(2), 2, 1.0, 1.0),
        ];
        let sel = ModelDrivenScheduler::optimize(&jobs, 4, 29.5);
        let width: usize = sel
            .iter()
            .map(|a| jobs.iter().find(|j| j.0 == *a).unwrap().1)
            .sum();
        assert_eq!(width, 4, "selected {sel:?}");
    }

    #[test]
    fn aging_prevents_starvation() {
        let mut m = Machine::new(XEON_4WAY);
        // Four 2-wide jobs: only two fit per quantum; everyone must run
        // within a handful of quanta thanks to ageing.
        let ids: Vec<AppId> = (0..4)
            .map(|i| {
                let threads = (0..2)
                    .map(|_| {
                        ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(8.0, 0.7)))
                    })
                    .collect();
                m.add_app(AppDescriptor::new(format!("j{i}"), threads))
            })
            .collect();
        let mut s = ModelDrivenScheduler::new();
        let mut ran: std::collections::BTreeSet<AppId> = Default::default();
        for _ in 0..8 {
            let d = s.schedule(&m.view());
            for a in &d.assignments {
                ran.insert(m.view().thread(a.thread).unwrap().app);
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        for id in ids {
            assert!(ran.contains(&id), "{id} starved");
        }
    }

    #[test]
    fn greedy_path_used_above_enumeration_limit() {
        let jobs: Vec<(AppId, usize, f64, f64)> = (0..20)
            .map(|i| (AppId(i), 1, (i as f64) % 13.0, 1.0))
            .collect();
        let sel = ModelDrivenScheduler::optimize(&jobs, 4, 29.5);
        assert_eq!(sel.len(), 4);
        // Deterministic.
        assert_eq!(sel, ModelDrivenScheduler::optimize(&jobs, 4, 29.5));
    }

    #[test]
    fn end_to_end_beats_or_matches_greedy_packing() {
        // Sanity: on a heavy+light mix the model-driven scheduler should
        // finish apps at least as fast as deliberately saturating packing.
        use crate::oracle::greedy_pack;
        let build = || {
            let mut m = Machine::new(XEON_4WAY);
            let mut measured = Vec::new();
            for i in 0..2 {
                let threads = (0..2)
                    .map(|_| ThreadSpec::new(400_000.0, Box::new(ConstantDemand::new(11.0, 0.85))))
                    .collect();
                measured.push(m.add_app(AppDescriptor::new(format!("h{i}"), threads)));
            }
            for i in 0..2 {
                let threads = vec![ThreadSpec::new(
                    f64::INFINITY,
                    Box::new(ConstantDemand::new(23.6, 0.98)),
                )];
                m.add_app(AppDescriptor::new(format!("b{i}"), threads));
            }
            (m, measured)
        };
        let (mut m1, meas1) = build();
        let mut md = ModelDrivenScheduler::new();
        let o1 = m1.run(&mut md, StopCondition::AppsFinished(meas1.clone()));
        assert!(o1.condition_met);
        let t_md: u64 = meas1.iter().map(|&a| m1.turnaround_us(a).unwrap()).sum();

        let (mut m2, meas2) = build();
        let mut gp = greedy_pack();
        let o2 = m2.run(&mut gp, StopCondition::AppsFinished(meas2.clone()));
        assert!(o2.condition_met);
        let t_gp: u64 = meas2.iter().map(|&a| m2.turnaround_us(a).unwrap()).sum();

        assert!(
            t_md <= t_gp + t_gp / 10,
            "model-driven {t_md} vs greedy-pack {t_gp}"
        );
    }
}
