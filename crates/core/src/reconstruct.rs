//! Demand reconstruction: from *consumed* bandwidth to *required*
//! bandwidth.
//!
//! §4 of the paper drives both policies with each job's "bus bandwidth
//! **requirements**". Hardware counters, however, report bandwidth
//! **consumption** — and under a saturated bus consumption is deflated:
//! every thread's memory phases are dilated, so a job demanding
//! 11.65 tx/µs per thread may be observed at ~4.9. Feeding deflated
//! observations into Equation (1) inflates `ABBW/proc` (allocated jobs
//! look cheaper than they are) and flips the pairing decisions the paper
//! describes — e.g. a saturating application would be co-scheduled with a
//! BBMA instead of with its own second instance.
//!
//! The correction uses a second PMU reading that the paper's platform
//! really provides: the Pentium 4 / Xeon event set includes **IOQ (bus
//! queue) occupancy** events, from which the average *dilation* Λ̄ of
//! memory phases over an interval can be estimated (Λ̄ ≈ 1 on an
//! uncontended bus). Since consumption tracks progress,
//!
//! ```text
//! requirement ≈ consumption × Λ̄
//! ```
//!
//! exactly for fully memory-bound jobs, and with a bounded *relative*
//! overestimate for compute-bound jobs — which is harmless because their
//! absolute rates are small (an nBBMA measured at 0.004 tx/µs inflates to
//! at most ~0.01). The simulator exposes the same reading as
//! `MachineView::dilation_integral`; the real-thread CPU manager accepts
//! it through [`crate::manager::CpuManager::note_dilation`].
//!
//! Reconstruction is part of the *measurement* layer: both policies (and
//! the ablation comparators) receive reconstructed requirements, so the
//! Latest-vs-Window comparison stays exactly the paper's.

use std::collections::BTreeMap;

use busbw_sim::AppId;

/// One reconstruction step: the clamped inputs and the output, as fed to
/// the estimator (the trace layer's "reconstruction inputs/outputs").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconstruction {
    /// Consumed bandwidth per thread over the interval, tx/µs (clamped
    /// at 0).
    pub measured_per_thread: f64,
    /// Average bus dilation Λ̄ used (clamped at 1).
    pub dilation: f64,
    /// Reconstructed requirement per thread, tx/µs.
    pub demand_per_thread: f64,
}

/// Reconstructs per-thread bandwidth requirements from observations.
#[derive(Debug, Default, Clone)]
pub struct DemandTracker {
    est: BTreeMap<AppId, f64>,
}

impl DemandTracker {
    /// A tracker with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation for `app`.
    ///
    /// * `measured_per_thread` — consumed bandwidth per thread over the
    ///   interval (tx/µs);
    /// * `dilation` — the average bus dilation Λ̄ over the interval (1 =
    ///   uncontended; values below 1 are clamped).
    ///
    /// Returns the reconstructed requirement per thread.
    pub fn observe(&mut self, app: AppId, measured_per_thread: f64, dilation: f64) -> f64 {
        self.observe_detailed(app, measured_per_thread, dilation)
            .demand_per_thread
    }

    /// [`DemandTracker::observe`], returning the full [`Reconstruction`]
    /// record (clamped inputs plus output) for tracing.
    pub fn observe_detailed(
        &mut self,
        app: AppId,
        measured_per_thread: f64,
        dilation: f64,
    ) -> Reconstruction {
        let measured = measured_per_thread.max(0.0);
        let dilation = dilation.max(1.0);
        let est = measured * dilation;
        self.est.insert(app, est);
        Reconstruction {
            measured_per_thread: measured,
            dilation,
            demand_per_thread: est,
        }
    }

    /// Current requirement estimate (0 for never-observed jobs).
    pub fn estimate(&self, app: AppId) -> f64 {
        self.est.get(&app).copied().unwrap_or(0.0)
    }

    /// Drop a finished job.
    pub fn forget(&mut self, app: AppId) {
        self.est.remove(&app);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: AppId = AppId(1);

    #[test]
    fn uncontended_observations_are_exact() {
        let mut t = DemandTracker::new();
        assert_eq!(t.observe(A, 11.65, 1.0), 11.65);
        // Downward phase change on an uncontended bus is believed at once.
        assert_eq!(t.observe(A, 2.0, 1.0), 2.0);
        assert_eq!(t.estimate(A), 2.0);
    }

    #[test]
    fn saturated_observations_are_inflated_by_dilation() {
        let mut t = DemandTracker::new();
        // CG-class job throttled to 4.87 tx/µs/thread at Λ̄ = 2.63 —
        // reconstruction recovers ≈ its 11.65 true demand (µ < 1 gives a
        // slight overestimate, which is the safe direction).
        let est = t.observe(A, 4.87, 2.63);
        assert!((11.0..13.5).contains(&est), "reconstructed {est}");
    }

    #[test]
    fn low_rate_jobs_stay_low_after_inflation() {
        let mut t = DemandTracker::new();
        // nBBMA at deep saturation: absolute error stays negligible.
        let est = t.observe(A, 0.0037, 3.0);
        assert!(est < 0.02, "{est}");
    }

    #[test]
    fn latest_observation_wins() {
        let mut t = DemandTracker::new();
        t.observe(A, 10.0, 2.0);
        t.observe(A, 3.0, 1.0);
        assert_eq!(t.estimate(A), 3.0);
    }

    #[test]
    fn dilation_below_one_is_clamped() {
        let mut t = DemandTracker::new();
        assert_eq!(t.observe(A, 5.0, 0.5), 5.0);
    }

    #[test]
    fn never_observed_jobs_estimate_zero() {
        let t = DemandTracker::new();
        assert_eq!(t.estimate(AppId(9)), 0.0);
    }

    #[test]
    fn forget_clears_state() {
        let mut t = DemandTracker::new();
        t.observe(A, 5.0, 1.0);
        t.forget(A);
        assert_eq!(t.estimate(A), 0.0);
    }

    #[test]
    fn negative_measurements_are_clamped() {
        let mut t = DemandTracker::new();
        assert_eq!(t.observe(A, -1.0, 2.0), 0.0);
    }
}
