//! The bus-bandwidth-aware gang scheduler (§4 of the paper).
//!
//! One scheduler implementation hosts both policies; they differ only in
//! the [`BandwidthEstimator`] plugged in. Per scheduling quantum:
//!
//! 1. **Measure.** Counter samples are taken twice per quantum
//!    ([`busbw_sim::Scheduler::on_sample`]); at the quantum boundary each
//!    job that ran gets its per-thread transaction rate recorded
//!    (equipartitioned over its threads, as in the paper).
//! 2. **Rotate.** Jobs that just ran move to the end of the (conceptually
//!    circular) applications list.
//! 3. **Select.** The head job is admitted unconditionally — this is the
//!    paper's starvation-freedom guarantee. While free processors remain,
//!    the list is re-traversed and the job maximizing
//!    `fitness(ABBW/proc, BBW/thread)` among those that *fit* (gang
//!    semantics: all threads or nothing) is admitted; `ABBW/proc` is
//!    recomputed after every admission.
//! 4. **Place.** Admitted gangs are placed with affinity: each thread
//!    prefers its previous cpu, then its warmest cache, then any free cpu.

use std::collections::BTreeMap;

use busbw_perfmon::EventKind;
use busbw_sim::{AppId, Assignment, CpuId, Decision, MachineView, Scheduler, SimTime};
use busbw_trace::{EventBus, TraceEvent};

use crate::estimator::BandwidthEstimator;
use crate::reconstruct::DemandTracker;
use crate::selection::{select_gangs_report, Candidate};

/// Configuration shared by both paper policies.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Scheduling quantum, µs. The paper uses 200 ms — twice the Linux
    /// quantum, after finding that 100 ms caused conflicting user/kernel
    /// scheduling decisions and excessive context switches (§5).
    pub quantum_us: u64,
    /// Counter samples per quantum (the paper: 2).
    pub samples_per_quantum: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            quantum_us: 200_000,
            samples_per_quantum: 2,
        }
    }
}

/// The gang-like, bandwidth-aware scheduler hosting a policy's estimator.
pub struct BusAwareScheduler {
    cfg: PolicyConfig,
    estimator: Box<dyn BandwidthEstimator>,
    /// The applications list (head = next guaranteed job).
    order: Vec<AppId>,
    /// Jobs scheduled in the current quantum.
    running: Vec<AppId>,
    /// Per-app cumulative transaction totals at the last quantum boundary.
    quantum_snapshot: BTreeMap<AppId, f64>,
    /// Per-app cumulative transaction totals at the last counter sample.
    sample_snapshot: BTreeMap<AppId, f64>,
    last_boundary_us: SimTime,
    last_sample_us: SimTime,
    /// IOQ-dilation integral at the last quantum boundary / sample.
    dilation_at_boundary: f64,
    dilation_at_sample: f64,
    /// Reconstructs bandwidth *requirements* from the consumption the
    /// counters report (see [`crate::reconstruct`]).
    demand: DemandTracker,
    display_name: String,
    /// Structured-trace handle (attached by the machine at run start, or
    /// explicitly via [`BusAwareScheduler::set_tracer`]).
    tracer: EventBus,
}

impl BusAwareScheduler {
    /// Build a scheduler around an estimator with the default (paper)
    /// configuration.
    pub fn new(estimator: Box<dyn BandwidthEstimator>) -> Self {
        Self::with_config(estimator, PolicyConfig::default())
    }

    /// Build with a custom configuration (quantum ablations).
    pub fn with_config(estimator: Box<dyn BandwidthEstimator>, cfg: PolicyConfig) -> Self {
        assert!(cfg.quantum_us > 0, "quantum must be positive");
        assert!(
            cfg.samples_per_quantum >= 1,
            "need at least one sample per quantum"
        );
        let display_name = estimator.label().to_string();
        Self {
            cfg,
            estimator,
            order: Vec::new(),
            running: Vec::new(),
            quantum_snapshot: BTreeMap::new(),
            sample_snapshot: BTreeMap::new(),
            last_boundary_us: 0,
            last_sample_us: 0,
            dilation_at_boundary: 0.0,
            dilation_at_sample: 0.0,
            demand: DemandTracker::new(),
            display_name,
            tracer: EventBus::off(),
        }
    }

    /// Attach a structured-trace bus. Per-quantum selections (head
    /// admissions and fitness-scored gang admissions) and demand
    /// reconstructions are emitted into it. Usually unnecessary: running
    /// under a traced [`busbw_sim::Machine`] attaches its bus
    /// automatically via [`Scheduler::attach_tracer`].
    pub fn set_tracer(&mut self, tracer: EventBus) {
        self.tracer = tracer;
    }

    /// The active configuration.
    pub fn config(&self) -> PolicyConfig {
        self.cfg
    }

    /// Current `BBW/thread` estimate for a job (for tests and reports).
    pub fn estimate(&self, app: AppId) -> f64 {
        self.estimator.estimate(app)
    }

    /// Total transactions issued so far by `app`'s threads.
    fn app_tx(view: &MachineView<'_>, app: AppId) -> f64 {
        view.app(app)
            .map(|a| {
                a.threads
                    .iter()
                    .map(|t| view.registry.total(t.key(), EventKind::BusTransactions))
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Keep `order` in sync with the machine's live applications: drop
    /// finished jobs, append newly arrived ones.
    fn refresh_job_list(&mut self, view: &MachineView<'_>) {
        let live = view.live_apps();
        let mut present: std::collections::BTreeSet<AppId> = live.iter().copied().collect();
        self.order.retain(|a| present.contains(a));
        for a in &self.order {
            present.remove(a);
        }
        // Newly connected jobs go to the end of the circular list.
        self.order.extend(present);
        // Forget estimator state for dead jobs.
        let live_set: std::collections::BTreeSet<AppId> = live.into_iter().collect();
        let dead: Vec<AppId> = self
            .quantum_snapshot
            .keys()
            .filter(|a| !live_set.contains(a))
            .copied()
            .collect();
        for a in dead {
            self.quantum_snapshot.remove(&a);
            self.sample_snapshot.remove(&a);
            self.estimator.forget(a);
            self.demand.forget(a);
        }
    }

    /// Record the finished quantum's bandwidth for every job that ran.
    ///
    /// Measurements are first passed through demand reconstruction: the
    /// manager can tell from the workload's total transaction rate whether
    /// the interval was saturated, and under saturation a measurement is
    /// only a lower bound on the job's requirement.
    fn settle_quantum(&mut self, view: &MachineView<'_>) {
        let dt = view.now.saturating_sub(self.last_boundary_us);
        if dt == 0 {
            return;
        }
        let lambda = (view.dilation_integral - self.dilation_at_boundary) / dt as f64;
        for &app in &self.running {
            let Some(info) = view.app(app) else { continue };
            let total = Self::app_tx(view, app);
            let before = self.quantum_snapshot.get(&app).copied().unwrap_or(0.0);
            let width = info.threads.len().max(1);
            let per_thread = (total - before).max(0.0) / dt as f64 / width as f64;
            let rec = self.demand.observe_detailed(app, per_thread, lambda);
            if self.tracer.enabled() {
                self.tracer.emit(TraceEvent::Reconstruct {
                    at_us: view.now,
                    app: app.0,
                    measured_per_thread: rec.measured_per_thread,
                    dilation: rec.dilation,
                    demand_per_thread: rec.demand_per_thread,
                });
            }
            self.estimator.record_quantum(app, rec.demand_per_thread);
        }
    }

    /// §4 selection: head admitted by default, then fitness-driven fill
    /// (shared with the real-thread CPU manager via [`crate::selection`]).
    fn select(&self, view: &MachineView<'_>) -> Vec<AppId> {
        let candidates: Vec<Candidate<AppId>> = self
            .order
            .iter()
            .filter_map(|&app| {
                view.app(app).map(|info| Candidate {
                    key: app,
                    width: info.width(),
                    bbw_per_thread: self.estimator.estimate(app),
                })
            })
            .collect();
        let report = select_gangs_report(&candidates, view.num_cpus, view.bus_capacity);
        if self.tracer.enabled() {
            for adm in &report {
                match adm.fitness {
                    None => self.tracer.emit(TraceEvent::HeadAdmission {
                        at_us: view.now,
                        app: adm.key.0,
                        width: adm.width,
                    }),
                    Some(f) => self.tracer.emit(TraceEvent::GangSelected {
                        at_us: view.now,
                        app: adm.key.0,
                        width: adm.width,
                        fitness: f,
                        available_per_proc: adm.available_per_proc.unwrap_or(0.0),
                    }),
                }
            }
        }
        report.into_iter().map(|a| a.key).collect()
    }

    /// Affinity-preserving placement of whole gangs.
    pub(crate) fn place(view: &MachineView<'_>, admitted: &[AppId]) -> Vec<Assignment> {
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let mut pending = Vec::new();

        // Pass 1: honor last-cpu affinity.
        for &app in admitted {
            let Some(info) = view.app(app) else { continue };
            for &tid in info.threads {
                let Some(t) = view.thread(tid) else { continue };
                if !t.is_runnable() {
                    continue;
                }
                match t.last_cpu {
                    Some(c) if free[c.0] => {
                        free[c.0] = false;
                        assignments.push(Assignment {
                            thread: tid,
                            cpu: c,
                        });
                    }
                    _ => pending.push(tid),
                }
            }
        }
        // Pass 2: warmest cache, then lowest free cpu.
        for tid in pending {
            let warm = view.warmest_cpu(tid).map(|(c, _)| c).filter(|c| free[c.0]);
            let cpu = warm.or_else(|| free.iter().position(|&f| f).map(CpuId));
            if let Some(c) = cpu {
                free[c.0] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: c,
                });
            }
        }
        assignments
    }
}

impl Scheduler for BusAwareScheduler {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        // 1. Measure the quantum that just ended.
        self.settle_quantum(view);

        // 2. Maintain the circular list: rotate jobs that ran to the end.
        self.refresh_job_list(view);
        let ran: Vec<AppId> = self
            .order
            .iter()
            .copied()
            .filter(|a| self.running.contains(a))
            .collect();
        self.order.retain(|a| !ran.contains(a));
        self.order.extend(ran);

        // 3. Select and 4. place.
        let admitted = self.select(view);
        let assignments = Self::place(view, &admitted);

        // Snapshot counters for the jobs about to run.
        for &app in &admitted {
            let t = Self::app_tx(view, app);
            self.quantum_snapshot.insert(app, t);
            self.sample_snapshot.insert(app, t);
        }
        self.running = admitted;
        self.last_boundary_us = view.now;
        self.last_sample_us = view.now;
        self.dilation_at_boundary = view.dilation_integral;
        self.dilation_at_sample = view.dilation_integral;

        Decision {
            assignments,
            next_resched_in_us: self.cfg.quantum_us,
            sample_period_us: Some(self.cfg.quantum_us / self.cfg.samples_per_quantum as u64),
        }
    }

    fn on_sample(&mut self, view: &MachineView<'_>) {
        let dt = view.now.saturating_sub(self.last_sample_us);
        if dt == 0 {
            return;
        }
        let lambda = (view.dilation_integral - self.dilation_at_sample) / dt as f64;
        for &app in &self.running {
            let Some(info) = view.app(app) else { continue };
            let total = Self::app_tx(view, app);
            let before = self.sample_snapshot.get(&app).copied().unwrap_or(0.0);
            let width = info.threads.len().max(1);
            let per_thread = (total - before).max(0.0) / dt as f64 / width as f64;
            let demand = self.demand.observe(app, per_thread, lambda);
            self.estimator.record_sample(app, demand);
            self.sample_snapshot.insert(app, total);
        }
        self.dilation_at_sample = view.dilation_integral;
        self.last_sample_us = view.now;
    }

    fn attach_tracer(&mut self, tracer: &EventBus) {
        self.tracer = tracer.clone();
    }

    fn name(&self) -> &str {
        &self.display_name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{LatestQuantumEstimator, QuantaWindowEstimator};
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, StopCondition, ThreadSpec, XEON_4WAY};

    fn app(m: &mut Machine, name: &str, nthreads: usize, rate: f64, mu: f64, work: f64) -> AppId {
        let threads = (0..nthreads)
            .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(rate, mu))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    fn latest() -> BusAwareScheduler {
        BusAwareScheduler::new(Box::new(LatestQuantumEstimator::new()))
    }

    fn window() -> BusAwareScheduler {
        BusAwareScheduler::new(Box::new(QuantaWindowEstimator::new()))
    }

    #[test]
    fn everything_fits_everything_runs() {
        let mut m = Machine::new(XEON_4WAY);
        let a = app(&mut m, "a", 2, 1.0, 0.2, 400_000.0);
        let b = app(&mut m, "b", 2, 1.0, 0.2, 400_000.0);
        let mut s = latest();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![a, b]));
        assert!(out.condition_met);
        // Both fit on 4 cpus: finish in ~solo time.
        for id in [a, b] {
            let t = m.turnaround_us(id).unwrap();
            assert!(t < 500_000, "{t}");
        }
    }

    #[test]
    fn gang_semantics_all_threads_or_none() {
        let mut m = Machine::new(XEON_4WAY);
        // Three 2-thread apps on 4 cpus: exactly two run per quantum.
        for i in 0..3 {
            app(&mut m, &format!("a{i}"), 2, 1.0, 0.2, f64::INFINITY);
        }
        let mut s = latest();
        // Drive a few quanta manually.
        for _ in 0..5 {
            let d = s.schedule(&m.view());
            // Count threads per app among assignments.
            let mut per_app: BTreeMap<AppId, usize> = BTreeMap::new();
            for a in &d.assignments {
                let info = m.view().thread(a.thread).unwrap();
                *per_app.entry(info.app).or_default() += 1;
            }
            assert_eq!(d.assignments.len(), 4, "all cpus used");
            for (_, n) in per_app {
                assert_eq!(n, 2, "gangs are indivisible");
            }
            // Advance a quantum so rotation matters.
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
    }

    #[test]
    fn no_starvation_under_rotation() {
        let mut m = Machine::new(XEON_4WAY);
        let ids: Vec<AppId> = (0..4)
            .map(|i| app(&mut m, &format!("a{i}"), 2, 8.0, 0.8, f64::INFINITY))
            .collect();
        let mut s = window();
        let mut ran_ever: BTreeMap<AppId, bool> = ids.iter().map(|&i| (i, false)).collect();
        // Drive quanta manually; every app must run (head-of-list rule).
        for _ in 0..12 {
            let d = s.schedule(&m.view());
            for a in &d.assignments {
                let info = m.view().thread(a.thread).unwrap();
                ran_ever.insert(info.app, true);
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert!(ran_ever.values().all(|&r| r), "{ran_ever:?}");
    }

    #[test]
    fn pairs_heavy_with_light_when_bus_is_tight() {
        let mut m = Machine::new(XEON_4WAY);
        // Two heavy 2-thread jobs (each alone nearly fills the bus) and two
        // light 2-thread jobs. The fitness rule should co-schedule
        // heavy+light, not heavy+heavy.
        let h1 = app(&mut m, "h1", 2, 11.0, 0.9, f64::INFINITY);
        let h2 = app(&mut m, "h2", 2, 11.0, 0.9, f64::INFINITY);
        let l1 = app(&mut m, "l1", 2, 0.1, 0.05, f64::INFINITY);
        let l2 = app(&mut m, "l2", 2, 0.1, 0.05, f64::INFINITY);
        let mut s = latest();
        // Warm up estimates over a few quanta.
        let mut paired_heavy_heavy = 0;
        let mut quanta = 0;
        for _ in 0..20 {
            let d = s.schedule(&m.view());
            let mut apps: Vec<AppId> = d
                .assignments
                .iter()
                .map(|a| m.view().thread(a.thread).unwrap().app)
                .collect();
            apps.sort();
            apps.dedup();
            if apps.contains(&h1) && apps.contains(&h2) {
                paired_heavy_heavy += 1;
            }
            let _ = (apps.contains(&l1), apps.contains(&l2));
            quanta += 1;
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // The first quantum has no estimates (heavy+heavy is unavoidable),
        // and because the counters measure *achieved* bandwidth, heavy jobs
        // that co-ran look lighter than they are — so occasional
        // heavy+heavy pairings recur (the paper's policy measures the same
        // way). The claim to verify is that the fitness rule makes
        // heavy+light the dominant pairing, where a bandwidth-oblivious
        // round-robin over this 4-job list would pair heavy+heavy half the
        // time and Linux would do so arbitrarily.
        assert!(quanta >= 20);
        assert!(
            paired_heavy_heavy * 2 < quanta,
            "heavy jobs co-scheduled {paired_heavy_heavy}/{quanta} quanta"
        );
    }

    #[test]
    fn estimates_converge_to_solo_rates() {
        let mut m = Machine::new(XEON_4WAY);
        let a = app(&mut m, "a", 2, 5.0, 0.5, f64::INFINITY);
        let mut s = latest();
        for _ in 0..6 {
            let d = s.schedule(&m.view());
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // settle_quantum happens on the *next* schedule call.
        let _ = s.schedule(&m.view());
        let est = s.estimate(a);
        assert!(
            (4.0..7.0).contains(&est),
            "estimate {est}, expected ~5 tx/µs/thread"
        );
    }

    #[test]
    fn placement_preserves_affinity_across_quanta() {
        let mut m = Machine::new(XEON_4WAY);
        let _a = app(&mut m, "a", 2, 2.0, 0.3, f64::INFINITY);
        let _b = app(&mut m, "b", 2, 2.0, 0.3, f64::INFINITY);
        let mut s = window();
        let d1 = s.schedule(&m.view());
        let placement1: BTreeMap<_, _> = d1.assignments.iter().map(|a| (a.thread, a.cpu)).collect();
        let _ = m.run(
            &mut busbw_sim::testkit::Replay::new(d1),
            StopCondition::At(m.now() + 200_000),
        );
        let d2 = s.schedule(&m.view());
        for a in &d2.assignments {
            assert_eq!(placement1[&a.thread], a.cpu, "thread migrated needlessly");
        }
    }
}
