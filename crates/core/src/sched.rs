//! The bus-bandwidth-aware gang scheduler (§4 of the paper), expressed as
//! [`PolicyStack`] presets over the [`crate::pipeline`] stages.
//!
//! One stack shape hosts both paper policies; they differ only in the
//! [`BandwidthEstimator`] plugged in. Per scheduling quantum:
//!
//! 1. **Measure.** Counter samples are taken twice per quantum
//!    ([`busbw_sim::Scheduler::on_sample`]); at the quantum boundary each
//!    job that ran gets its per-thread transaction rate recorded
//!    (equipartitioned over its threads, as in the paper) — the
//!    [`ReconstructingEstimator`] stage.
//! 2. **Rotate.** Jobs that just ran move to the end of the (conceptually
//!    circular) applications list — the stack's own bookkeeping.
//! 3. **Select.** The head job is admitted unconditionally — this is the
//!    paper's starvation-freedom guarantee ([`HeadOfList`] admission).
//!    While free processors remain, the list is re-traversed and the job
//!    maximizing `fitness(ABBW/proc, BBW/thread)` among those that *fit*
//!    (gang semantics: all threads or nothing) is admitted; `ABBW/proc`
//!    is recomputed after every admission ([`FitnessSelector`]).
//! 4. **Place.** Admitted gangs are placed with affinity: each thread
//!    prefers its previous cpu, then its warmest cache, then any free cpu
//!    ([`PackedPlacer`]).

use crate::estimator::BandwidthEstimator;
use crate::pipeline::{
    FitnessSelector, HeadOfList, PackedPlacer, PolicyStack, ReconstructingEstimator,
    PAPER_QUANTUM_US, PAPER_SAMPLES_PER_QUANTUM,
};

/// Configuration shared by both paper policies.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Scheduling quantum, µs. The paper uses 200 ms — twice the Linux
    /// quantum, after finding that 100 ms caused conflicting user/kernel
    /// scheduling decisions and excessive context switches (§5).
    pub quantum_us: u64,
    /// Counter samples per quantum (the paper: 2).
    pub samples_per_quantum: u32,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            quantum_us: PAPER_QUANTUM_US,
            samples_per_quantum: PAPER_SAMPLES_PER_QUANTUM,
        }
    }
}

/// The paper's bandwidth-aware gang scheduler around an estimator, with
/// the default (paper) configuration: head-of-list admission, fitness-max
/// fill, packed affinity placement, 200 ms quantum sampled twice.
pub fn bus_aware(estimator: Box<dyn BandwidthEstimator>) -> PolicyStack {
    bus_aware_with_config(estimator, PolicyConfig::default())
}

/// [`bus_aware`] with a custom configuration (quantum ablations).
///
/// # Panics
/// Panics if the quantum is zero or `samples_per_quantum` is zero.
pub fn bus_aware_with_config(
    estimator: Box<dyn BandwidthEstimator>,
    cfg: PolicyConfig,
) -> PolicyStack {
    let name = estimator.label().to_string();
    PolicyStack::new(
        name,
        cfg.quantum_us,
        Box::new(ReconstructingEstimator::with_samples(
            estimator,
            cfg.samples_per_quantum,
        )),
        Box::new(HeadOfList),
        Box::new(FitnessSelector),
        Box::new(PackedPlacer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{LatestQuantumEstimator, QuantaWindowEstimator};
    use busbw_sim::{
        AppDescriptor, AppId, ConstantDemand, Machine, Scheduler, StopCondition, ThreadSpec,
        XEON_4WAY,
    };
    use std::collections::BTreeMap;

    fn app(m: &mut Machine, name: &str, nthreads: usize, rate: f64, mu: f64, work: f64) -> AppId {
        let threads = (0..nthreads)
            .map(|_| ThreadSpec::new(work, Box::new(ConstantDemand::new(rate, mu))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    fn latest() -> PolicyStack {
        bus_aware(Box::new(LatestQuantumEstimator::new()))
    }

    fn window() -> PolicyStack {
        bus_aware(Box::new(QuantaWindowEstimator::new()))
    }

    #[test]
    fn everything_fits_everything_runs() {
        let mut m = Machine::new(XEON_4WAY);
        let a = app(&mut m, "a", 2, 1.0, 0.2, 400_000.0);
        let b = app(&mut m, "b", 2, 1.0, 0.2, 400_000.0);
        let mut s = latest();
        let out = m.run(&mut s, StopCondition::AppsFinished(vec![a, b]));
        assert!(out.condition_met);
        // Both fit on 4 cpus: finish in ~solo time.
        for id in [a, b] {
            let t = m.turnaround_us(id).unwrap();
            assert!(t < 500_000, "{t}");
        }
    }

    #[test]
    fn gang_semantics_all_threads_or_none() {
        let mut m = Machine::new(XEON_4WAY);
        // Three 2-thread apps on 4 cpus: exactly two run per quantum.
        for i in 0..3 {
            app(&mut m, &format!("a{i}"), 2, 1.0, 0.2, f64::INFINITY);
        }
        let mut s = latest();
        // Drive a few quanta manually.
        for _ in 0..5 {
            let d = s.schedule(&m.view());
            // Count threads per app among assignments.
            let mut per_app: BTreeMap<AppId, usize> = BTreeMap::new();
            for a in &d.assignments {
                let info = m.view().thread(a.thread).unwrap();
                *per_app.entry(info.app).or_default() += 1;
            }
            assert_eq!(d.assignments.len(), 4, "all cpus used");
            for (_, n) in per_app {
                assert_eq!(n, 2, "gangs are indivisible");
            }
            // Advance a quantum so rotation matters.
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
    }

    #[test]
    fn no_starvation_under_rotation() {
        let mut m = Machine::new(XEON_4WAY);
        let ids: Vec<AppId> = (0..4)
            .map(|i| app(&mut m, &format!("a{i}"), 2, 8.0, 0.8, f64::INFINITY))
            .collect();
        let mut s = window();
        let mut ran_ever: BTreeMap<AppId, bool> = ids.iter().map(|&i| (i, false)).collect();
        // Drive quanta manually; every app must run (head-of-list rule).
        for _ in 0..12 {
            let d = s.schedule(&m.view());
            for a in &d.assignments {
                let info = m.view().thread(a.thread).unwrap();
                ran_ever.insert(info.app, true);
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert!(ran_ever.values().all(|&r| r), "{ran_ever:?}");
    }

    #[test]
    fn pairs_heavy_with_light_when_bus_is_tight() {
        let mut m = Machine::new(XEON_4WAY);
        // Two heavy 2-thread jobs (each alone nearly fills the bus) and two
        // light 2-thread jobs. The fitness rule should co-schedule
        // heavy+light, not heavy+heavy.
        let h1 = app(&mut m, "h1", 2, 11.0, 0.9, f64::INFINITY);
        let h2 = app(&mut m, "h2", 2, 11.0, 0.9, f64::INFINITY);
        let l1 = app(&mut m, "l1", 2, 0.1, 0.05, f64::INFINITY);
        let l2 = app(&mut m, "l2", 2, 0.1, 0.05, f64::INFINITY);
        let mut s = latest();
        // Warm up estimates over a few quanta.
        let mut paired_heavy_heavy = 0;
        let mut quanta = 0;
        for _ in 0..20 {
            let d = s.schedule(&m.view());
            let mut apps: Vec<AppId> = d
                .assignments
                .iter()
                .map(|a| m.view().thread(a.thread).unwrap().app)
                .collect();
            apps.sort();
            apps.dedup();
            if apps.contains(&h1) && apps.contains(&h2) {
                paired_heavy_heavy += 1;
            }
            let _ = (apps.contains(&l1), apps.contains(&l2));
            quanta += 1;
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // The first quantum has no estimates (heavy+heavy is unavoidable),
        // and because the counters measure *achieved* bandwidth, heavy jobs
        // that co-ran look lighter than they are — so occasional
        // heavy+heavy pairings recur (the paper's policy measures the same
        // way). The claim to verify is that the fitness rule makes
        // heavy+light the dominant pairing, where a bandwidth-oblivious
        // round-robin over this 4-job list would pair heavy+heavy half the
        // time and Linux would do so arbitrarily.
        assert!(quanta >= 20);
        assert!(
            paired_heavy_heavy * 2 < quanta,
            "heavy jobs co-scheduled {paired_heavy_heavy}/{quanta} quanta"
        );
    }

    #[test]
    fn estimates_converge_to_solo_rates() {
        let mut m = Machine::new(XEON_4WAY);
        let a = app(&mut m, "a", 2, 5.0, 0.5, f64::INFINITY);
        let mut s = latest();
        for _ in 0..6 {
            let d = s.schedule(&m.view());
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // The estimator settles on the *next* schedule call.
        let _ = s.schedule(&m.view());
        let est = s.estimate(a);
        assert!(
            (4.0..7.0).contains(&est),
            "estimate {est}, expected ~5 tx/µs/thread"
        );
    }

    #[test]
    fn placement_preserves_affinity_across_quanta() {
        let mut m = Machine::new(XEON_4WAY);
        let _a = app(&mut m, "a", 2, 2.0, 0.3, f64::INFINITY);
        let _b = app(&mut m, "b", 2, 2.0, 0.3, f64::INFINITY);
        let mut s = window();
        let d1 = s.schedule(&m.view());
        let placement1: BTreeMap<_, _> = d1.assignments.iter().map(|a| (a.thread, a.cpu)).collect();
        let _ = m.run(
            &mut busbw_sim::testkit::Replay::new(d1),
            StopCondition::At(m.now() + 200_000),
        );
        let d2 = s.schedule(&m.view());
        for a in &d2.assignments {
            assert_eq!(placement1[&a.thread], a.cpu, "thread migrated needlessly");
        }
    }

    #[test]
    fn preset_stack_reports_paper_defaults() {
        let s = latest();
        assert_eq!(s.name(), "Latest");
        assert_eq!(s.quantum_us(), PolicyConfig::default().quantum_us);
        assert_eq!(
            s.stage_labels(),
            ["Latest", "head", "fitness", "packed"],
            "preset composes the paper stages"
        );
    }
}
