//! Ablation comparators: gang schedulers with the same admission
//! machinery as [`crate::BusAwareScheduler`] but *different selection
//! rules*. They isolate how much of the paper's win comes from the fitness
//! heuristic itself versus from gang scheduling or mere rotation.
//!
//! * [`RoundRobinGang`] — gang scheduling + rotation only: admit jobs in
//!   list order while they fit. (What you get if you delete Equation (1).)
//! * [`RandomGang`] — gang scheduling with uniformly random fill after the
//!   head job (seeded, deterministic).
//! * [`GreedyPackGang`] — admits the *highest-bandwidth* fitting job
//!   first: a plausible-but-wrong heuristic that maximizes measured bus
//!   utilization and therefore saturates; shows why "fill the bus" must
//!   mean "approach, don't exceed".

use busbw_sim::{AppId, Decision, MachineView, Scheduler, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

use busbw_perfmon::EventKind;

use crate::sched::BusAwareScheduler;

/// Shared bookkeeping for the comparator gang schedulers.
struct GangCommon {
    quantum_us: u64,
    order: Vec<AppId>,
    running: Vec<AppId>,
    snapshot: BTreeMap<AppId, f64>,
    last_boundary_us: SimTime,
    dilation_at_boundary: f64,
    /// Last measured per-thread rate (used by greedy).
    rates: BTreeMap<AppId, f64>,
}

impl GangCommon {
    fn new(quantum_us: u64) -> Self {
        Self {
            quantum_us,
            order: Vec::new(),
            running: Vec::new(),
            snapshot: BTreeMap::new(),
            last_boundary_us: 0,
            dilation_at_boundary: 0.0,
            rates: BTreeMap::new(),
        }
    }

    fn app_tx(view: &MachineView<'_>, app: AppId) -> f64 {
        view.app(app)
            .map(|a| {
                a.threads
                    .iter()
                    .map(|t| view.registry.total(t.key(), EventKind::BusTransactions))
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// Measure, refresh, rotate. Returns the up-to-date job order.
    fn pre_select(&mut self, view: &MachineView<'_>) {
        let dt = view.now.saturating_sub(self.last_boundary_us);
        if dt > 0 {
            let lambda =
                ((view.dilation_integral - self.dilation_at_boundary) / dt as f64).max(1.0);
            for &app in &self.running {
                let Some(info) = view.app(app) else { continue };
                let total = Self::app_tx(view, app);
                let before = self.snapshot.get(&app).copied().unwrap_or(0.0);
                let rate =
                    (total - before).max(0.0) / dt as f64 / info.width().max(1) as f64 * lambda;
                self.rates.insert(app, rate);
            }
        }
        let live = view.live_apps();
        self.order.retain(|a| live.contains(a));
        for a in live {
            if !self.order.contains(&a) {
                self.order.push(a);
            }
        }
        let ran: Vec<AppId> = self
            .order
            .iter()
            .copied()
            .filter(|a| self.running.contains(a))
            .collect();
        self.order.retain(|a| !ran.contains(a));
        self.order.extend(ran);
    }

    fn finish(&mut self, view: &MachineView<'_>, admitted: Vec<AppId>) -> Decision {
        for &app in &admitted {
            self.snapshot.insert(app, Self::app_tx(view, app));
        }
        self.running = admitted.clone();
        self.last_boundary_us = view.now;
        self.dilation_at_boundary = view.dilation_integral;
        Decision {
            assignments: BusAwareScheduler::place(view, &admitted),
            next_resched_in_us: self.quantum_us,
            sample_period_us: None,
        }
    }
}

/// Gang scheduling + rotation, first-fit in list order.
pub struct RoundRobinGang {
    common: GangCommon,
}

impl RoundRobinGang {
    /// With the paper's 200 ms quantum.
    pub fn new() -> Self {
        Self::with_quantum(200_000)
    }

    /// With a custom quantum.
    pub fn with_quantum(quantum_us: u64) -> Self {
        Self {
            common: GangCommon::new(quantum_us),
        }
    }
}

impl Default for RoundRobinGang {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for RoundRobinGang {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        self.common.pre_select(view);
        let mut free = view.num_cpus;
        let mut admitted = Vec::new();
        for &app in &self.common.order {
            let w = view.app(app).map(|a| a.width()).unwrap_or(usize::MAX);
            if w <= free {
                admitted.push(app);
                free -= w;
                if free == 0 {
                    break;
                }
            }
        }
        self.common.finish(view, admitted)
    }

    fn name(&self) -> &str {
        "RoundRobinGang"
    }
}

/// Gang scheduling with random fill after the guaranteed head job.
pub struct RandomGang {
    common: GangCommon,
    rng: StdRng,
}

impl RandomGang {
    /// Seeded random gang scheduler with the paper's 200 ms quantum.
    pub fn new(seed: u64) -> Self {
        Self {
            common: GangCommon::new(200_000),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomGang {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        self.common.pre_select(view);
        let mut free = view.num_cpus;
        let mut admitted = Vec::new();
        // Head guarantee, as in the real policies.
        if let Some(&head) = self.common.order.first() {
            let w = view.app(head).map(|a| a.width()).unwrap_or(usize::MAX);
            if w <= free {
                admitted.push(head);
                free -= w;
            }
        }
        loop {
            let fitting: Vec<AppId> = self
                .common
                .order
                .iter()
                .copied()
                .filter(|a| {
                    !admitted.contains(a)
                        && view.app(*a).map(|i| i.width()).unwrap_or(usize::MAX) <= free
                })
                .collect();
            if fitting.is_empty() {
                break;
            }
            let pick = fitting[self.rng.gen_range(0..fitting.len())];
            let w = view.app(pick).map(|a| a.width()).unwrap_or(0);
            admitted.push(pick);
            free -= w;
        }
        self.common.finish(view, admitted)
    }

    fn name(&self) -> &str {
        "RandomGang"
    }
}

/// Gang scheduling that greedily admits the highest-bandwidth fitting job —
/// the "maximize utilization" strawman.
pub struct GreedyPackGang {
    common: GangCommon,
}

impl GreedyPackGang {
    /// With the paper's 200 ms quantum.
    pub fn new() -> Self {
        Self {
            common: GangCommon::new(200_000),
        }
    }
}

impl Default for GreedyPackGang {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for GreedyPackGang {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        self.common.pre_select(view);
        let mut free = view.num_cpus;
        let mut admitted = Vec::new();
        if let Some(&head) = self.common.order.first() {
            let w = view.app(head).map(|a| a.width()).unwrap_or(usize::MAX);
            if w <= free {
                admitted.push(head);
                free -= w;
            }
        }
        loop {
            let best = self
                .common
                .order
                .iter()
                .copied()
                .filter(|a| {
                    !admitted.contains(a)
                        && view.app(*a).map(|i| i.width()).unwrap_or(usize::MAX) <= free
                })
                .max_by(|a, b| {
                    let ra = self.common.rates.get(a).copied().unwrap_or(0.0);
                    let rb = self.common.rates.get(b).copied().unwrap_or(0.0);
                    ra.total_cmp(&rb)
                });
            match best {
                Some(app) => {
                    let w = view.app(app).map(|a| a.width()).unwrap_or(0);
                    admitted.push(app);
                    free -= w;
                }
                None => break,
            }
        }
        self.common.finish(view, admitted)
    }

    fn name(&self) -> &str {
        "GreedyPack"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, StopCondition, ThreadSpec, XEON_4WAY};

    fn add(m: &mut Machine, name: &str, n: usize, rate: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(rate, 0.8))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    fn apps_of(m: &Machine, d: &Decision) -> Vec<AppId> {
        let mut v: Vec<AppId> = d
            .assignments
            .iter()
            .map(|a| m.view().thread(a.thread).unwrap().app)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn round_robin_rotates_through_all_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let ids: Vec<AppId> = (0..3)
            .map(|i| add(&mut m, &format!("a{i}"), 2, 1.0))
            .collect();
        let mut s = RoundRobinGang::new();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let d = s.schedule(&m.view());
            seen.extend(apps_of(&m, &d));
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert_eq!(seen.len(), ids.len(), "not all jobs ran: {seen:?}");
    }

    #[test]
    fn random_gang_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = Machine::new(XEON_4WAY);
            for i in 0..4 {
                add(&mut m, &format!("a{i}"), 2, 1.0);
            }
            let mut s = RandomGang::new(seed);
            let mut picks = Vec::new();
            for _ in 0..6 {
                let d = s.schedule(&m.view());
                picks.push(apps_of(&m, &d));
                let _ = m.run(
                    &mut busbw_sim::testkit::Replay::new(d),
                    StopCondition::At(m.now() + 200_000),
                );
            }
            picks
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn greedy_pack_prefers_heavy_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let heavy = add(&mut m, "heavy", 2, 12.0);
        let _light = add(&mut m, "light", 2, 0.1);
        let heavy2 = add(&mut m, "heavy2", 2, 12.0);
        let mut s = GreedyPackGang::new();
        // Let it measure everyone once via rotation.
        for _ in 0..4 {
            let d = s.schedule(&m.view());
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // Force a state where head is heavy; greedy should co-schedule the
        // other heavy job despite saturation.
        let mut saw_heavy_pair = false;
        for _ in 0..6 {
            let d = s.schedule(&m.view());
            let apps = apps_of(&m, &d);
            if apps.contains(&heavy) && apps.contains(&heavy2) {
                saw_heavy_pair = true;
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert!(saw_heavy_pair, "greedy never packed the two heavy jobs");
    }
}
