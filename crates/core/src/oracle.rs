//! Ablation comparators: gang schedulers with the same admission
//! machinery as the paper policies but *different selection rules*. They
//! isolate how much of the paper's win comes from the fitness heuristic
//! itself versus from gang scheduling or mere rotation. Each is a
//! [`PolicyStack`] preset over the [`crate::pipeline`] stages, sharing the
//! [`RawRateEstimator`] measurement path the monolithic comparators used
//! to carry inline.
//!
//! * [`round_robin_gang`] — gang scheduling + rotation only: admit jobs in
//!   list order while they fit. (What you get if you delete Equation (1).)
//! * [`random_gang`] — gang scheduling with uniformly random fill after
//!   the head job (seeded, deterministic).
//! * [`greedy_pack`] — admits the *highest-bandwidth* fitting job first: a
//!   plausible-but-wrong heuristic that maximizes measured bus utilization
//!   and therefore saturates; shows why "fill the bus" must mean
//!   "approach, don't exceed".

use crate::pipeline::{
    Fcfs, GreedySelector, NullSelector, PackedPlacer, PolicyStack, RandomSelector,
    RawRateEstimator, StrictHead, PAPER_QUANTUM_US,
};

/// Gang scheduling + rotation, first-fit in list order, with the paper's
/// 200 ms quantum.
pub fn round_robin_gang() -> PolicyStack {
    round_robin_gang_with_quantum(PAPER_QUANTUM_US)
}

/// [`round_robin_gang`] with a custom quantum.
pub fn round_robin_gang_with_quantum(quantum_us: u64) -> PolicyStack {
    PolicyStack::new(
        "RoundRobinGang",
        quantum_us,
        Box::new(RawRateEstimator::new()),
        Box::new(Fcfs),
        Box::new(NullSelector),
        Box::new(PackedPlacer),
    )
}

/// Gang scheduling with seeded random fill after the guaranteed head job,
/// with the paper's 200 ms quantum.
pub fn random_gang(seed: u64) -> PolicyStack {
    PolicyStack::new(
        "RandomGang",
        PAPER_QUANTUM_US,
        Box::new(RawRateEstimator::new()),
        Box::new(StrictHead),
        Box::new(RandomSelector::new(seed)),
        Box::new(PackedPlacer),
    )
}

/// Gang scheduling that greedily admits the highest-bandwidth fitting job
/// — the "maximize utilization" strawman — with the paper's 200 ms
/// quantum.
pub fn greedy_pack() -> PolicyStack {
    PolicyStack::new(
        "GreedyPack",
        PAPER_QUANTUM_US,
        Box::new(RawRateEstimator::new()),
        Box::new(StrictHead),
        Box::new(GreedySelector),
        Box::new(PackedPlacer),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{
        AppDescriptor, AppId, ConstantDemand, Decision, Machine, Scheduler, StopCondition,
        ThreadSpec, XEON_4WAY,
    };

    fn add(m: &mut Machine, name: &str, n: usize, rate: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(rate, 0.8))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    fn apps_of(m: &Machine, d: &Decision) -> Vec<AppId> {
        let mut v: Vec<AppId> = d
            .assignments
            .iter()
            .map(|a| m.view().thread(a.thread).unwrap().app)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn round_robin_rotates_through_all_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let ids: Vec<AppId> = (0..3)
            .map(|i| add(&mut m, &format!("a{i}"), 2, 1.0))
            .collect();
        let mut s = round_robin_gang();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let d = s.schedule(&m.view());
            seen.extend(apps_of(&m, &d));
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert_eq!(seen.len(), ids.len(), "not all jobs ran: {seen:?}");
    }

    #[test]
    fn random_gang_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = Machine::new(XEON_4WAY);
            for i in 0..4 {
                add(&mut m, &format!("a{i}"), 2, 1.0);
            }
            let mut s = random_gang(seed);
            let mut picks = Vec::new();
            for _ in 0..6 {
                let d = s.schedule(&m.view());
                picks.push(apps_of(&m, &d));
                let _ = m.run(
                    &mut busbw_sim::testkit::Replay::new(d),
                    StopCondition::At(m.now() + 200_000),
                );
            }
            picks
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn greedy_pack_prefers_heavy_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let heavy = add(&mut m, "heavy", 2, 12.0);
        let _light = add(&mut m, "light", 2, 0.1);
        let heavy2 = add(&mut m, "heavy2", 2, 12.0);
        let mut s = greedy_pack();
        // Let it measure everyone once via rotation.
        for _ in 0..4 {
            let d = s.schedule(&m.view());
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // Force a state where head is heavy; greedy should co-schedule the
        // other heavy job despite saturation.
        let mut saw_heavy_pair = false;
        for _ in 0..6 {
            let d = s.schedule(&m.view());
            let apps = apps_of(&m, &d);
            if apps.contains(&heavy) && apps.contains(&heavy2) {
                saw_heavy_pair = true;
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert!(saw_heavy_pair, "greedy never packed the two heavy jobs");
    }

    #[test]
    fn comparator_presets_report_names_and_stages() {
        assert_eq!(round_robin_gang().name(), "RoundRobinGang");
        assert_eq!(
            round_robin_gang().stage_labels(),
            ["RawRate", "fcfs", "none", "packed"]
        );
        assert_eq!(random_gang(1).name(), "RandomGang");
        assert_eq!(
            random_gang(1).stage_labels(),
            ["RawRate", "strict-head", "random", "packed"]
        );
        assert_eq!(greedy_pack().name(), "GreedyPack");
        assert_eq!(
            greedy_pack().stage_labels(),
            ["RawRate", "strict-head", "greedy", "packed"]
        );
    }
}
