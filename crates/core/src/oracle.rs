//! Ablation comparators and the offline-optimal oracle.
//!
//! The first half of this module holds gang schedulers with the same
//! admission machinery as the paper policies but *different selection
//! rules*. They isolate how much of the paper's win comes from the
//! fitness heuristic itself versus from gang scheduling or mere
//! rotation. Each is a [`PolicyStack`] preset over the
//! [`crate::pipeline`] stages, sharing the [`RawRateEstimator`]
//! measurement path the monolithic comparators used to carry inline.
//!
//! * [`round_robin_gang`] — gang scheduling + rotation only: admit jobs in
//!   list order while they fit. (What you get if you delete Equation (1).)
//! * [`random_gang`] — gang scheduling with uniformly random fill after
//!   the head job (seeded, deterministic).
//! * [`greedy_pack`] — admits the *highest-bandwidth* fitting job first: a
//!   plausible-but-wrong heuristic that maximizes measured bus utilization
//!   and therefore saturates; shows why "fill the bus" must mean
//!   "approach, don't exceed".
//!
//! The second half is [`offline_optimal`]: a branch-and-bound search over
//! gang *sequences* that treats the simulator itself — `FsbBus` or
//! `HierarchicalBus`, cache warmth, SMT, everything — as the exact cost
//! evaluator. It answers the question the heuristics cannot: what is the
//! best turnaround any clairvoyant schedule could have achieved on this
//! instance? Every preset stack can then be scored by *regret* against
//! that ceiling (see `experiments regret`). The search replays candidate
//! decision prefixes from t = 0 through [`FixedPlanScheduler`] (the
//! machine is deterministic, so replay is exact), prunes with an
//! admissible no-contention lower bound, and skips permutations of
//! caller-declared symmetric gangs. Heuristic decision logs recorded with
//! [`RecordingScheduler`] seed the incumbent, which makes the reported
//! optimum structurally ≤ every seeded heuristic.

use busbw_sim::{
    AppId, Assignment, CpuId, Decision, Machine, MachineView, Scheduler, SimTime, StopCondition,
    ThreadId,
};

use crate::pipeline::{
    Fcfs, GreedySelector, NullSelector, PackedPlacer, PolicyStack, RandomSelector,
    RawRateEstimator, StrictHead, PAPER_QUANTUM_US,
};

/// Gang scheduling + rotation, first-fit in list order, with the paper's
/// 200 ms quantum.
pub fn round_robin_gang() -> PolicyStack {
    round_robin_gang_with_quantum(PAPER_QUANTUM_US)
}

/// [`round_robin_gang`] with a custom quantum.
pub fn round_robin_gang_with_quantum(quantum_us: u64) -> PolicyStack {
    PolicyStack::new(
        "RoundRobinGang",
        quantum_us,
        Box::new(RawRateEstimator::new()),
        Box::new(Fcfs),
        Box::new(NullSelector),
        Box::new(PackedPlacer),
    )
}

/// Gang scheduling with seeded random fill after the guaranteed head job,
/// with the paper's 200 ms quantum.
pub fn random_gang(seed: u64) -> PolicyStack {
    PolicyStack::new(
        "RandomGang",
        PAPER_QUANTUM_US,
        Box::new(RawRateEstimator::new()),
        Box::new(StrictHead),
        Box::new(RandomSelector::new(seed)),
        Box::new(PackedPlacer),
    )
}

/// Gang scheduling that greedily admits the highest-bandwidth fitting job
/// — the "maximize utilization" strawman — with the paper's 200 ms
/// quantum.
pub fn greedy_pack() -> PolicyStack {
    PolicyStack::new(
        "GreedyPack",
        PAPER_QUANTUM_US,
        Box::new(RawRateEstimator::new()),
        Box::new(StrictHead),
        Box::new(GreedySelector),
        Box::new(PackedPlacer),
    )
}

// ---------------------------------------------------------------------------
// Offline-optimal search
// ---------------------------------------------------------------------------

/// Idle quantum the oracle's replay scheduler returns once its plan is
/// exhausted: far beyond any search horizon, so the machine's idle fast
/// path mega-ticks straight to the hard cap without overflow.
pub const ORACLE_IDLE_SENTINEL_US: u64 = 1 << 40;

/// Tuning knobs for [`offline_optimal`] / [`brute_force_optimal`].
#[derive(Debug, Clone, Copy)]
pub struct OracleSearchConfig {
    /// Reschedule interval each appended decision runs for, µs. The
    /// machine also reschedules on gang completion, so one decision may
    /// end early — the search therefore considers completion-time
    /// boundaries for free.
    pub quantum_us: u64,
    /// Hard cap on simulated time per candidate schedule, µs. Costs are
    /// censored at the horizon exactly like the experiment harness
    /// censors heuristic runs at the cap, so oracle and heuristic costs
    /// share one objective.
    pub horizon_us: u64,
    /// Maximum number of candidate simulations before the search gives
    /// up and reports `complete = false` with the best incumbent so far.
    pub node_budget: u64,
    /// Slack subtracted from the no-contention lower bound, µs, to keep
    /// it admissible against float rounding in progress accounting.
    pub lb_slack_us: f64,
}

impl OracleSearchConfig {
    /// A config with the given quantum and horizon, a 2000-node budget,
    /// and 1 µs of lower-bound slack.
    pub fn new(quantum_us: u64, horizon_us: u64) -> Self {
        Self {
            quantum_us,
            horizon_us,
            node_budget: 2000,
            lb_slack_us: 1.0,
        }
    }
}

/// Frozen per-thread state at a branch point of the search tree.
#[derive(Debug, Clone)]
pub struct ThreadSlot {
    /// The thread.
    pub id: ThreadId,
    /// Whether it still wants cpu time.
    pub runnable: bool,
    /// Affinity hint from the prefix schedule.
    pub last_cpu: Option<CpuId>,
    /// Virtual µs of work left (`INFINITY` for run-forever threads).
    pub remaining_us: f64,
    /// Whether the thread has ever run under the prefix schedule.
    pub started: bool,
}

/// Frozen per-gang state at a branch point of the search tree.
#[derive(Debug, Clone)]
pub struct GangState {
    /// The application.
    pub app: AppId,
    /// Arrival time, µs.
    pub arrived_at: SimTime,
    /// Completion time under the prefix schedule, if finished.
    pub finished_at: Option<SimTime>,
    /// The gang's threads.
    pub threads: Vec<ThreadSlot>,
}

impl GangState {
    /// Number of threads that still want cpu time.
    pub fn runnable_width(&self) -> usize {
        self.threads.iter().filter(|t| t.runnable).count()
    }

    /// Whether no thread of the gang has ever run — the window in which
    /// bit-identical gangs are interchangeable (symmetry pruning).
    pub fn is_unstarted(&self) -> bool {
        self.threads.iter().all(|t| !t.started)
    }

    /// Wall time needed to finish the slowest thread at the best possible
    /// progress rate (1 virtual µs per wall µs).
    pub fn max_remaining_us(&self) -> f64 {
        self.threads
            .iter()
            .map(|t| t.remaining_us)
            .fold(0.0, f64::max)
    }
}

/// Machine state at the moment a replayed plan ran out of decisions —
/// the branch point from which the search extends the schedule.
#[derive(Debug, Clone)]
pub struct BranchState {
    /// Simulated time at exhaustion, µs.
    pub now: SimTime,
    /// Number of processors.
    pub num_cpus: usize,
    /// Every application's frozen state, in id order.
    pub gangs: Vec<GangState>,
}

impl BranchState {
    /// Capture the branch state from a scheduler's view.
    pub fn capture(view: &MachineView<'_>) -> Self {
        let gangs = view
            .apps()
            .map(|app| {
                let threads = app
                    .threads
                    .iter()
                    .map(|&tid| {
                        let t = view.thread(tid).expect("gang thread exists");
                        ThreadSlot {
                            id: tid,
                            runnable: t.is_runnable(),
                            last_cpu: t.last_cpu,
                            remaining_us: (t.work_us - t.progress_us).max(0.0),
                            started: t.progress_us > 0.0 || t.last_cpu.is_some(),
                        }
                    })
                    .collect();
                GangState {
                    app: app.id,
                    arrived_at: app.arrived_at,
                    finished_at: app.finished_at,
                    threads,
                }
            })
            .collect();
        Self {
            now: view.now,
            num_cpus: view.num_cpus,
            gangs,
        }
    }
}

/// Replays a fixed list of [`Decision`]s verbatim, then idles.
///
/// The machine is deterministic, so replaying a recorded decision prefix
/// from t = 0 reproduces the exact same trajectory — this is how the
/// search evaluates candidate schedules without cloning machines. When
/// the plan runs out mid-run the scheduler snapshots a [`BranchState`]
/// (available via [`FixedPlanScheduler::take_branch_state`]) and returns
/// an idle decision of [`ORACLE_IDLE_SENTINEL_US`], letting the machine
/// fast-forward to its hard cap.
pub struct FixedPlanScheduler {
    plan: Vec<Decision>,
    next: usize,
    branch: Option<BranchState>,
}

impl FixedPlanScheduler {
    /// A scheduler that will replay `plan` in order.
    pub fn new(plan: Vec<Decision>) -> Self {
        Self {
            plan,
            next: 0,
            branch: None,
        }
    }

    /// Whether every planned decision has been handed out.
    pub fn exhausted(&self) -> bool {
        self.next >= self.plan.len()
    }

    /// The state captured when the plan ran out mid-run, if it did.
    pub fn take_branch_state(&mut self) -> Option<BranchState> {
        self.branch.take()
    }
}

impl Scheduler for FixedPlanScheduler {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        if let Some(d) = self.plan.get(self.next) {
            self.next += 1;
            d.clone()
        } else {
            if self.branch.is_none() {
                self.branch = Some(BranchState::capture(view));
            }
            Decision::idle(ORACLE_IDLE_SENTINEL_US)
        }
    }

    fn name(&self) -> &str {
        "Oracle"
    }
}

/// Wraps any scheduler and records every decision it makes, so a
/// heuristic's full run can later be replayed bit-identically through
/// [`FixedPlanScheduler`] — the mechanism behind seeding the oracle's
/// incumbent with the preset stacks.
pub struct RecordingScheduler<'a> {
    inner: &'a mut dyn Scheduler,
    log: Vec<Decision>,
}

impl<'a> RecordingScheduler<'a> {
    /// Record `inner`'s decisions.
    pub fn new(inner: &'a mut dyn Scheduler) -> Self {
        Self {
            inner,
            log: Vec::new(),
        }
    }

    /// The recorded decision log, in schedule order.
    pub fn into_log(self) -> Vec<Decision> {
        self.log
    }
}

impl Scheduler for RecordingScheduler<'_> {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let d = self.inner.schedule(view);
        self.log.push(d.clone());
        d
    }

    fn on_sample(&mut self, view: &MachineView<'_>) {
        self.inner.on_sample(view);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Outcome of simulating one candidate plan.
#[derive(Debug, Clone)]
pub enum SimNode {
    /// Every measured app finished: exact total turnaround, µs.
    Leaf {
        /// Σ turnaround over the measured apps, µs.
        cost_us: u64,
    },
    /// The horizon fired while the plan still covered the timeline; the
    /// schedule cannot be extended, and the cost is censored at the
    /// horizon exactly as the harness censors heuristics at the cap.
    Censored {
        /// Σ censored turnaround over the measured apps, µs.
        cost_us: u64,
    },
    /// The plan ran out before the horizon: an interior search node.
    Branch {
        /// Machine state at exhaustion, for generating child decisions.
        state: BranchState,
        /// Admissible lower bound on any completion of this prefix, µs.
        lower_bound_us: u64,
    },
}

/// Total (possibly censored) turnaround over `measured`, µs, saturating.
fn censored_cost_us(machine: &Machine, measured: &[AppId], stopped_at: SimTime) -> u64 {
    let view = machine.view();
    measured
        .iter()
        .map(|&id| {
            let a = view.app(id).expect("measured app exists");
            match a.finished_at {
                Some(f) => f.saturating_sub(a.arrived_at),
                None => stopped_at.saturating_sub(a.arrived_at),
            }
        })
        .fold(0u64, u64::saturating_add)
}

/// Admissible lower bound on the censored total turnaround of any
/// schedule extending this branch: progress accrues at most 1 virtual µs
/// per wall µs per thread, so an unfinished gang cannot finish before
/// `now + max-thread-remaining` — clamped to the horizon because costs
/// are censored there. `lb_slack_us` absorbs float rounding in the
/// progress accounting.
fn lower_bound_us(state: &BranchState, measured: &[AppId], cfg: &OracleSearchConfig) -> u64 {
    let mut lb = 0u64;
    for &id in measured {
        let Some(g) = state.gangs.iter().find(|g| g.app == id) else {
            continue;
        };
        let contrib = match g.finished_at {
            Some(f) => f.saturating_sub(g.arrived_at),
            None => {
                let rem = (g.max_remaining_us() - cfg.lb_slack_us).max(0.0);
                let est = if rem.is_finite() {
                    state.now.saturating_add(rem as u64)
                } else {
                    u64::MAX
                };
                est.min(cfg.horizon_us).saturating_sub(g.arrived_at)
            }
        };
        lb = lb.saturating_add(contrib);
    }
    lb
}

/// Evaluate one candidate plan on a fresh machine: replay it from t = 0,
/// classify the outcome. Sets the machine's hard cap to the horizon.
pub fn simulate(
    mut machine: Machine,
    measured: &[AppId],
    plan: &[Decision],
    cfg: &OracleSearchConfig,
) -> SimNode {
    machine.set_hard_cap_us(cfg.horizon_us);
    let mut sched = FixedPlanScheduler::new(plan.to_vec());
    let out = machine.run(&mut sched, StopCondition::AppsFinished(measured.to_vec()));
    if out.condition_met {
        SimNode::Leaf {
            cost_us: censored_cost_us(&machine, measured, out.stopped_at),
        }
    } else if let Some(state) = sched.take_branch_state() {
        let lb = lower_bound_us(&state, measured, cfg);
        SimNode::Branch {
            state,
            lower_bound_us: lb,
        }
    } else {
        SimNode::Censored {
            cost_us: censored_cost_us(&machine, measured, out.stopped_at),
        }
    }
}

/// Whether a chosen gang subset respects the declared symmetry classes:
/// within each class, the *unstarted* members chosen must form a prefix
/// of the class order. Bit-identical gangs are interchangeable until one
/// of them runs (after which cache warmth and progress differentiate
/// them), so exploring only the prefix-ordered subsets visits one
/// representative per permutation class without losing any distinct
/// schedule.
fn sym_ok(chosen: &[&GangState], live: &[&GangState], classes: &[Vec<AppId>]) -> bool {
    for class in classes {
        let mut seen_gap = false;
        for &id in class {
            let Some(g) = live.iter().find(|g| g.app == id) else {
                continue;
            };
            if !g.is_unstarted() {
                continue;
            }
            let in_chosen = chosen.iter().any(|c| c.app == id);
            if in_chosen && seen_gap {
                return false;
            }
            if !in_chosen {
                seen_gap = true;
            }
        }
    }
    true
}

/// Canonical placement for a chosen gang subset: gangs in app-id order,
/// runnable threads only, each thread on its `last_cpu` when free, else
/// the lowest free cpu.
fn place(chosen: &[&GangState], num_cpus: usize, quantum_us: u64) -> Decision {
    let mut free = vec![true; num_cpus];
    let mut assignments = Vec::new();
    for g in chosen {
        for t in &g.threads {
            if !t.runnable {
                continue;
            }
            let cpu = match t.last_cpu {
                Some(c) if c.0 < num_cpus && free[c.0] => c,
                _ => CpuId(free.iter().position(|&f| f).expect("width was checked")),
            };
            free[cpu.0] = false;
            assignments.push(Assignment {
                thread: t.id,
                cpu,
            });
        }
    }
    Decision {
        assignments,
        next_resched_in_us: quantum_us,
        sample_period_us: None,
    }
}

/// All child decisions from a branch state: every non-empty subset of
/// live gangs whose runnable width fits the machine, in ascending-bitmask
/// order (deterministic), minus subsets eliminated by symmetry. Idling is
/// never generated — nothing in the model rewards an empty quantum.
fn branch_decisions(
    state: &BranchState,
    cfg: &OracleSearchConfig,
    sym_classes: &[Vec<AppId>],
    sym_prunes: &mut u64,
) -> Vec<Decision> {
    let live: Vec<&GangState> = state
        .gangs
        .iter()
        .filter(|g| g.finished_at.is_none() && g.runnable_width() > 0)
        .collect();
    let n = live.len();
    assert!(
        n <= 16,
        "oracle branching supports at most 16 live gangs, got {n}"
    );
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        let chosen: Vec<&GangState> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| live[i])
            .collect();
        let width: usize = chosen.iter().map(|g| g.runnable_width()).sum();
        if width > state.num_cpus {
            continue;
        }
        if !sym_ok(&chosen, &live, sym_classes) {
            *sym_prunes += 1;
            continue;
        }
        out.push(place(&chosen, state.num_cpus, cfg.quantum_us));
    }
    out
}

/// What an offline-optimal search found.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Best (censored) total turnaround found, µs. `u64::MAX` only if the
    /// search saw no leaf at all (node budget of 0).
    pub best_cost_us: u64,
    /// The decision sequence achieving `best_cost_us`.
    pub best_plan: Vec<Decision>,
    /// Candidate simulations performed (seeds + tree nodes).
    pub nodes: u64,
    /// Simulations that terminated (leaf or censored).
    pub leaves: u64,
    /// Interior nodes discarded because their lower bound met the
    /// incumbent.
    pub bound_prunes: u64,
    /// Subsets skipped by symmetry-class prefix filtering.
    pub sym_prunes: u64,
    /// Admissible lower bound at the root (≤ `best_cost_us` always).
    pub root_lower_bound_us: u64,
    /// Whether the tree was exhausted (false = node budget hit; the
    /// incumbent is then an upper bound on the optimum, not the optimum).
    pub complete: bool,
    /// Index of the seed plan that holds the incumbent, if no searched
    /// schedule beat every seed.
    pub best_from_seed: Option<usize>,
}

fn search(
    build: &mut dyn FnMut() -> Machine,
    measured: &[AppId],
    cfg: &OracleSearchConfig,
    seeds: &[Vec<Decision>],
    sym_classes: &[Vec<AppId>],
    prune: bool,
) -> OracleReport {
    let mut report = OracleReport {
        best_cost_us: u64::MAX,
        best_plan: Vec::new(),
        nodes: 0,
        leaves: 0,
        bound_prunes: 0,
        sym_prunes: 0,
        root_lower_bound_us: 0,
        complete: true,
        best_from_seed: None,
    };

    // Seed the incumbent with the recorded heuristic runs. Evaluating
    // them through the same simulate() makes "oracle ≤ every seeded
    // heuristic" structural rather than numerical.
    for (i, seed) in seeds.iter().enumerate() {
        if report.nodes >= cfg.node_budget {
            report.complete = false;
            return report;
        }
        report.nodes += 1;
        match simulate(build(), measured, seed, cfg) {
            SimNode::Leaf { cost_us } | SimNode::Censored { cost_us } => {
                report.leaves += 1;
                if cost_us < report.best_cost_us {
                    report.best_cost_us = cost_us;
                    report.best_plan = seed.clone();
                    report.best_from_seed = Some(i);
                }
            }
            // A seed that runs out before the horizon has no defined
            // cost; it cannot serve as an incumbent.
            SimNode::Branch { .. } => {}
        }
    }

    let mut stack: Vec<(Vec<Decision>, BranchState)> = Vec::new();
    if report.nodes >= cfg.node_budget {
        report.complete = false;
        return report;
    }
    report.nodes += 1;
    match simulate(build(), measured, &[], cfg) {
        SimNode::Leaf { cost_us } | SimNode::Censored { cost_us } => {
            report.leaves += 1;
            report.root_lower_bound_us = cost_us;
            if cost_us < report.best_cost_us {
                report.best_cost_us = cost_us;
                report.best_plan = Vec::new();
                report.best_from_seed = None;
            }
        }
        SimNode::Branch {
            state,
            lower_bound_us,
        } => {
            report.root_lower_bound_us = lower_bound_us;
            stack.push((Vec::new(), state));
        }
    }

    'dfs: while let Some((plan, state)) = stack.pop() {
        let kids = branch_decisions(&state, cfg, sym_classes, &mut report.sym_prunes);
        let mut pending = Vec::new();
        for d in kids {
            if report.nodes >= cfg.node_budget {
                report.complete = false;
                break 'dfs;
            }
            report.nodes += 1;
            let mut child_plan = plan.clone();
            child_plan.push(d);
            match simulate(build(), measured, &child_plan, cfg) {
                SimNode::Leaf { cost_us } | SimNode::Censored { cost_us } => {
                    report.leaves += 1;
                    if cost_us < report.best_cost_us {
                        report.best_cost_us = cost_us;
                        report.best_plan = child_plan;
                        report.best_from_seed = None;
                    }
                }
                SimNode::Branch {
                    state,
                    lower_bound_us,
                } => {
                    if prune && lower_bound_us >= report.best_cost_us {
                        report.bound_prunes += 1;
                    } else {
                        pending.push((child_plan, state));
                    }
                }
            }
        }
        // Reverse so the lowest-bitmask child is explored first — the
        // same DFS order as brute force, which keeps tie-breaking (and
        // hence the reported plan) identical between the two searches.
        for node in pending.into_iter().rev() {
            stack.push(node);
        }
    }
    report
}

/// Branch-and-bound search for the offline-optimal gang schedule.
///
/// `build` must construct the *same* machine every call (the search
/// replays candidate prefixes on fresh instances); `measured` lists the
/// apps whose total turnaround is the objective; `seeds` are recorded
/// heuristic decision logs (see [`RecordingScheduler`]) evaluated first
/// as incumbents; `sym_classes` lists groups of gangs the caller asserts
/// are bit-identical at t = 0 — the search then explores only one
/// representative of each permutation while the gangs are unstarted.
///
/// With infinite-work *measured* gangs every path is censored at the
/// horizon and the tree is deep; provide seeds so bound pruning can bite,
/// or rely on `node_budget` as the backstop.
pub fn offline_optimal(
    build: &mut dyn FnMut() -> Machine,
    measured: &[AppId],
    cfg: &OracleSearchConfig,
    seeds: &[Vec<Decision>],
    sym_classes: &[Vec<AppId>],
) -> OracleReport {
    search(build, measured, cfg, seeds, sym_classes, true)
}

/// Exhaustive enumeration over the same tree as [`offline_optimal`] with
/// no seeds, no symmetry filtering, and no bound pruning — the ground
/// truth the branch-and-bound search is cross-checked against. Respects
/// `node_budget` purely as a runaway backstop.
pub fn brute_force_optimal(
    build: &mut dyn FnMut() -> Machine,
    measured: &[AppId],
    cfg: &OracleSearchConfig,
) -> OracleReport {
    search(build, measured, cfg, &[], &[], false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{
        AppDescriptor, AppId, ConstantDemand, Decision, Machine, Scheduler, StopCondition,
        ThreadSpec, XEON_4WAY,
    };

    fn add(m: &mut Machine, name: &str, n: usize, rate: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(rate, 0.8))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    fn apps_of(m: &Machine, d: &Decision) -> Vec<AppId> {
        let mut v: Vec<AppId> = d
            .assignments
            .iter()
            .map(|a| m.view().thread(a.thread).unwrap().app)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn round_robin_rotates_through_all_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let ids: Vec<AppId> = (0..3)
            .map(|i| add(&mut m, &format!("a{i}"), 2, 1.0))
            .collect();
        let mut s = round_robin_gang();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            let d = s.schedule(&m.view());
            seen.extend(apps_of(&m, &d));
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert_eq!(seen.len(), ids.len(), "not all jobs ran: {seen:?}");
    }

    #[test]
    fn random_gang_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = Machine::new(XEON_4WAY);
            for i in 0..4 {
                add(&mut m, &format!("a{i}"), 2, 1.0);
            }
            let mut s = random_gang(seed);
            let mut picks = Vec::new();
            for _ in 0..6 {
                let d = s.schedule(&m.view());
                picks.push(apps_of(&m, &d));
                let _ = m.run(
                    &mut busbw_sim::testkit::Replay::new(d),
                    StopCondition::At(m.now() + 200_000),
                );
            }
            picks
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn greedy_pack_prefers_heavy_jobs() {
        let mut m = Machine::new(XEON_4WAY);
        let heavy = add(&mut m, "heavy", 2, 12.0);
        let _light = add(&mut m, "light", 2, 0.1);
        let heavy2 = add(&mut m, "heavy2", 2, 12.0);
        let mut s = greedy_pack();
        // Let it measure everyone once via rotation.
        for _ in 0..4 {
            let d = s.schedule(&m.view());
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        // Force a state where head is heavy; greedy should co-schedule the
        // other heavy job despite saturation.
        let mut saw_heavy_pair = false;
        for _ in 0..6 {
            let d = s.schedule(&m.view());
            let apps = apps_of(&m, &d);
            if apps.contains(&heavy) && apps.contains(&heavy2) {
                saw_heavy_pair = true;
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                StopCondition::At(m.now() + 200_000),
            );
        }
        assert!(saw_heavy_pair, "greedy never packed the two heavy jobs");
    }

    #[test]
    fn comparator_presets_report_names_and_stages() {
        assert_eq!(round_robin_gang().name(), "RoundRobinGang");
        assert_eq!(
            round_robin_gang().stage_labels(),
            ["RawRate", "fcfs", "none", "packed"]
        );
        assert_eq!(random_gang(1).name(), "RandomGang");
        assert_eq!(
            random_gang(1).stage_labels(),
            ["RawRate", "strict-head", "random", "packed"]
        );
        assert_eq!(greedy_pack().name(), "GreedyPack");
        assert_eq!(
            greedy_pack().stage_labels(),
            ["RawRate", "strict-head", "greedy", "packed"]
        );
    }

    // -- offline-optimal search ------------------------------------------

    fn add_finite(m: &mut Machine, name: &str, n: usize, rate: f64, work_us: f64) -> AppId {
        let threads = (0..n)
            .map(|_| ThreadSpec::new(work_us, Box::new(ConstantDemand::new(rate, 0.8))))
            .collect();
        m.add_app(AppDescriptor::new(name, threads))
    }

    /// Three finite 2-thread gangs on the 4-way machine: small enough to
    /// enumerate exhaustively, big enough that schedules differ.
    fn small_instance() -> (Machine, Vec<AppId>) {
        let mut m = Machine::new(XEON_4WAY);
        let a = add_finite(&mut m, "a", 2, 6.0, 120_000.0);
        let b = add_finite(&mut m, "b", 2, 6.0, 120_000.0);
        let c = add_finite(&mut m, "c", 2, 1.0, 120_000.0);
        (m, vec![a, b, c])
    }

    fn small_cfg() -> OracleSearchConfig {
        let mut cfg = OracleSearchConfig::new(100_000, 2_000_000);
        cfg.node_budget = 50_000;
        cfg
    }

    #[test]
    fn oracle_matches_brute_force_on_small_instances() {
        let cfg = small_cfg();
        let measured = small_instance().1;
        let bf = brute_force_optimal(&mut || small_instance().0, &measured, &cfg);
        let bb = offline_optimal(&mut || small_instance().0, &measured, &cfg, &[], &[]);
        assert!(bf.complete && bb.complete);
        assert_eq!(bb.best_cost_us, bf.best_cost_us);
        // Same DFS order + strict incumbent updates ⇒ same winning plan.
        assert_eq!(bb.best_plan.len(), bf.best_plan.len());
        for (x, y) in bb.best_plan.iter().zip(&bf.best_plan) {
            let xa: Vec<_> = x.assignments.iter().map(|a| (a.thread, a.cpu)).collect();
            let ya: Vec<_> = y.assignments.iter().map(|a| (a.thread, a.cpu)).collect();
            assert_eq!(xa, ya);
        }
        assert!(bb.nodes <= bf.nodes, "pruning should not add work");
    }

    #[test]
    fn root_lower_bound_is_admissible() {
        let cfg = small_cfg();
        let measured = small_instance().1;
        let r = offline_optimal(&mut || small_instance().0, &measured, &cfg, &[], &[]);
        assert!(r.complete);
        assert!(
            r.root_lower_bound_us <= r.best_cost_us,
            "root LB {} exceeds achieved optimum {}",
            r.root_lower_bound_us,
            r.best_cost_us
        );
        // Three gangs of 120 ms work each can't beat 3 × 120 ms total.
        assert!(r.best_cost_us >= 360_000);
    }

    #[test]
    fn symmetry_pruning_preserves_the_optimum() {
        // Two literally identical gangs (same width, rate, work) plus one
        // distinct gang: permuting the twins yields the same cost.
        let build = || {
            let mut m = Machine::new(XEON_4WAY);
            let a = add_finite(&mut m, "twin0", 2, 6.0, 120_000.0);
            let b = add_finite(&mut m, "twin1", 2, 6.0, 120_000.0);
            let c = add_finite(&mut m, "other", 2, 1.0, 150_000.0);
            (m, vec![a, b, c])
        };
        let cfg = small_cfg();
        let measured = build().1;
        let bf = brute_force_optimal(&mut || build().0, &measured, &cfg);
        let sym = vec![vec![measured[0], measured[1]]];
        let bb = offline_optimal(&mut || build().0, &measured, &cfg, &[], &sym);
        assert!(bf.complete && bb.complete);
        assert_eq!(bb.best_cost_us, bf.best_cost_us);
        assert!(bb.sym_prunes > 0, "twins never triggered symmetry pruning");
        assert!(bb.nodes < bf.nodes);
    }

    #[test]
    fn heuristic_seed_bounds_the_incumbent() {
        let cfg = small_cfg();
        let (mut m, measured) = small_instance();
        m.set_hard_cap_us(cfg.horizon_us);
        let mut heuristic = round_robin_gang_with_quantum(cfg.quantum_us);
        let mut rec = RecordingScheduler::new(&mut heuristic);
        let out = m.run(&mut rec, StopCondition::AppsFinished(measured.clone()));
        assert!(out.condition_met);
        let seed = rec.into_log();
        let view = m.view();
        let seed_cost: u64 = measured
            .iter()
            .map(|&a| {
                let app = view.app(a).unwrap();
                app.finished_at.unwrap() - app.arrived_at
            })
            .sum();

        let r = offline_optimal(
            &mut || small_instance().0,
            &measured,
            &cfg,
            &[seed],
            &[],
        );
        assert!(
            r.best_cost_us <= seed_cost,
            "oracle {} worse than its own seed {}",
            r.best_cost_us,
            seed_cost
        );
    }

    #[test]
    fn replayed_plan_reproduces_the_recorded_cost() {
        let cfg = small_cfg();
        let (mut m, measured) = small_instance();
        m.set_hard_cap_us(cfg.horizon_us);
        let mut heuristic = round_robin_gang_with_quantum(cfg.quantum_us);
        let mut rec = RecordingScheduler::new(&mut heuristic);
        let live = m.run(&mut rec, StopCondition::AppsFinished(measured.clone()));
        assert!(live.condition_met);
        let plan = rec.into_log();

        match simulate(small_instance().0, &measured, &plan, &cfg) {
            SimNode::Leaf { cost_us } => {
                let view = m.view();
                let live_cost: u64 = measured
                    .iter()
                    .map(|&a| {
                        let app = view.app(a).unwrap();
                        app.finished_at.unwrap() - app.arrived_at
                    })
                    .sum();
                assert_eq!(cost_us, live_cost, "replay diverged from live run");
            }
            other => panic!("replay of a completed run must be a Leaf, got {other:?}"),
        }
    }

    #[test]
    fn infinite_background_gang_does_not_hang_the_search() {
        // A run-forever gang shares the machine; only the finite gang is
        // measured, so leaves still exist and the search terminates.
        let build = || {
            let mut m = Machine::new(XEON_4WAY);
            let fg = add_finite(&mut m, "fg", 2, 1.0, 120_000.0);
            let _bg = add(&mut m, "bg", 2, 6.0);
            (m, vec![fg])
        };
        let mut cfg = OracleSearchConfig::new(100_000, 1_000_000);
        cfg.node_budget = 3_000;
        let measured = build().1;
        let r = offline_optimal(&mut || build().0, &measured, &cfg, &[], &[]);
        assert!(r.leaves > 0);
        assert!(r.best_cost_us >= 120_000 && r.best_cost_us < u64::MAX);
        assert!(r.root_lower_bound_us <= r.best_cost_us);
    }

    #[test]
    fn node_budget_reports_incomplete() {
        let cfg = OracleSearchConfig {
            node_budget: 5,
            ..small_cfg()
        };
        let measured = small_instance().1;
        let r = offline_optimal(&mut || small_instance().0, &measured, &cfg, &[], &[]);
        assert!(!r.complete);
        assert!(r.nodes <= 5);
    }
}
