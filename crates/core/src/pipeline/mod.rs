//! The composable policy pipeline: **estimate → admit → select → place**.
//!
//! Every scheduler in this crate is a composition of four stages, even
//! though the paper presents them as whole algorithms:
//!
//! 1. [`Estimator`] — settle the finished interval's counter measurements
//!    into per-job `BBW/thread` estimates (absorbing
//!    [`crate::BandwidthEstimator`] for the paper's policies);
//! 2. [`Admission`] — the unconditional admissions: the paper's
//!    head-of-list starvation-freedom rule, FCFS fill, or nothing;
//! 3. [`Selector`] — fill the remaining processors: the Eq. (1)/(2)
//!    fitness maximization, random/greedy comparators, a model-driven
//!    lookahead, or a pinned non-gang schedule (the Linux baselines);
//! 4. [`Placer`] — map admitted gangs onto cpus (packed affinity,
//!    scatter, SMT-aware, plus the socket-aware `pack_local`,
//!    `spread_sockets`, and `migrate` placers for multi-socket
//!    topologies).
//!
//! [`PolicyStack`] composes one of each into a [`Scheduler`]. The named
//! presets (`bus_aware`, `linux_like`, `linux_o1`, `round_robin_gang`,
//! `random_gang`, `greedy_pack`) reproduce the pre-pipeline monolithic
//! schedulers *bit for bit* — the golden-decision tests in
//! `busbw-experiments` pin their decision streams.
//!
//! Each stage emits a [`TraceEvent::StageDecision`] when tracing is on
//! (deterministic payloads only), and the stack accumulates per-stage
//! wall-time into a [`StageTimings`] that the experiments layer folds
//! into run manifests.

pub mod admission;
pub mod estimators;
pub mod placers;
pub mod selectors;

pub use admission::{Fcfs, HeadOfList, Open, StrictHead, WidestFirst};
pub use estimators::{NullEstimator, RawRateEstimator, ReconstructingEstimator};
pub use placers::{
    place_packed, MigrateOnSaturationPlacer, PackLocalPlacer, PackedPlacer, ScatterPlacer,
    SmtAwarePlacer, SpreadSocketsPlacer,
};
pub use selectors::{
    FitnessSelector, GreedySelector, LookaheadSelector, NullSelector, RandomSelector,
};

use std::collections::BTreeSet;
use std::time::Instant;

use busbw_sim::{AppId, Assignment, Decision, MachineView, Scheduler, StageSnapshot, StageTimings};
use busbw_trace::{EventBus, PipelineStage, TraceEvent};

use crate::selection::Candidate;

/// The paper's scheduling quantum: 200 ms — twice the Linux quantum,
/// chosen after 100 ms caused conflicting user/kernel decisions (§5).
pub const PAPER_QUANTUM_US: u64 = 200_000;

/// Counter samples per quantum (the paper: 2).
pub const PAPER_SAMPLES_PER_QUANTUM: u32 = 2;

/// The Quanta Window policy's window length: 5 samples (§4).
pub const PAPER_WINDOW_SAMPLES: usize = 5;

/// Read-only context handed to every stage call: the machine view for the
/// decision point and the structured-trace bus (off when not tracing).
pub struct StageCtx<'a, 'v> {
    /// The scheduler's window into the machine.
    pub view: &'a MachineView<'v>,
    /// Structured-trace bus (stages may emit their own events, e.g. the
    /// fitness selector's `GangSelected`).
    pub tracer: &'a EventBus,
}

/// Stage 1: turn counter measurements into `BBW/thread` estimates.
///
/// The estimator owns the measurement bookkeeping a policy needs between
/// quanta: counter snapshots, dilation integrals, and the set of jobs that
/// ran (so [`Estimator::settle`] knows whom to charge).
pub trait Estimator: Send {
    /// Short display name (doubles as the preset stack's name for the
    /// paper policies: "Latest" / "Window").
    fn label(&self) -> &'static str;

    /// Settle the interval that just ended: read counters for the jobs
    /// admitted at the previous [`Estimator::commit`] and update estimates.
    fn settle(&mut self, ctx: &StageCtx<'_, '_>);

    /// Current `BBW/thread` estimate; `0.0` for never-measured jobs.
    fn estimate(&self, app: AppId) -> f64;

    /// A new quantum starts with `admitted` running: snapshot counters and
    /// remember the set for the next [`Estimator::settle`].
    fn commit(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]);

    /// Mid-quantum counter sample (only called when
    /// [`Estimator::sample_period_us`] returns `Some`).
    fn on_sample(&mut self, ctx: &StageCtx<'_, '_>) {
        let _ = ctx;
    }

    /// Sampling period to request from the machine, if this estimator
    /// consumes mid-quantum samples.
    fn sample_period_us(&self, quantum_us: u64) -> Option<u64> {
        let _ = quantum_us;
        None
    }

    /// Drop all state for a finished job.
    fn forget(&mut self, app: AppId) {
        let _ = app;
    }
}

/// Stage 2: unconditional admissions, before any scoring.
pub trait Admission: Send {
    /// Short display name.
    fn label(&self) -> &'static str;

    /// Indices into `cands` to admit unconditionally, in admission order.
    /// `free` is the machine's processor count; implementations must keep
    /// the summed widths within it.
    fn admit(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        free: usize,
    ) -> Vec<usize>;
}

/// What a [`Selector`] produced.
pub enum Selection {
    /// Additional candidate indices to admit (gang semantics; the placer
    /// maps them onto cpus).
    Gangs(Vec<usize>),
    /// A complete thread→cpu placement, bypassing the placer — how
    /// non-gang selectors (the Linux baselines) fit the pipeline.
    Pinned(Vec<Assignment>),
}

/// Stage 3: fill the processors left after admission.
pub trait Selector: Send {
    /// Short display name.
    fn label(&self) -> &'static str;

    /// Choose what else runs. `admitted` holds the admission stage's
    /// candidate indices; `free` the processors remaining after them.
    fn select(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        admitted: &[usize],
        free: usize,
    ) -> Selection;
}

/// Stage 4: map admitted gangs onto cpus.
pub trait Placer: Send {
    /// Short display name.
    fn label(&self) -> &'static str;

    /// Produce assignments for every runnable thread of `admitted` (in
    /// admission order), at most one thread per cpu.
    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment>;
}

/// A scheduler composed from one stage of each kind.
///
/// The stack owns the circular applications list (refresh + ran-to-end
/// rotation — identical across every gang policy in the paper) and drives
/// the four stages per reschedule; stages own their policy-specific state.
pub struct PolicyStack {
    name: String,
    quantum_us: u64,
    estimator: Box<dyn Estimator>,
    admission: Box<dyn Admission>,
    selector: Box<dyn Selector>,
    placer: Box<dyn Placer>,
    /// The applications list (head = next guaranteed job).
    order: Vec<AppId>,
    /// Jobs scheduled in the current quantum.
    running: Vec<AppId>,
    /// Jobs ever committed (to detect deaths and forget estimator state).
    known: BTreeSet<AppId>,
    tracer: EventBus,
    timings: StageTimings,
    /// When true, [`Scheduler::stage_snapshot`] captures what each stage
    /// decided on every reschedule (auditor introspection). Off by default
    /// so the normal path allocates nothing extra.
    introspect: bool,
    snapshot: Option<StageSnapshot>,
}

impl PolicyStack {
    /// Compose a stack. `name` is the display name reports use.
    ///
    /// # Panics
    /// Panics if `quantum_us` is zero.
    pub fn new(
        name: impl Into<String>,
        quantum_us: u64,
        estimator: Box<dyn Estimator>,
        admission: Box<dyn Admission>,
        selector: Box<dyn Selector>,
        placer: Box<dyn Placer>,
    ) -> Self {
        assert!(quantum_us > 0, "quantum must be positive");
        Self {
            name: name.into(),
            quantum_us,
            estimator,
            admission,
            selector,
            placer,
            order: Vec::new(),
            running: Vec::new(),
            known: BTreeSet::new(),
            tracer: EventBus::off(),
            timings: StageTimings::default(),
            introspect: false,
            snapshot: None,
        }
    }

    /// Attach a structured-trace bus explicitly. Usually unnecessary:
    /// running under a traced [`busbw_sim::Machine`] attaches its bus
    /// automatically via [`Scheduler::attach_tracer`].
    pub fn set_tracer(&mut self, tracer: EventBus) {
        self.tracer = tracer;
    }

    /// The scheduling quantum, µs.
    pub fn quantum_us(&self) -> u64 {
        self.quantum_us
    }

    /// Current `BBW/thread` estimate for a job (for tests and reports).
    pub fn estimate(&self, app: AppId) -> f64 {
        self.estimator.estimate(app)
    }

    /// The composed stage labels, in pipeline order.
    pub fn stage_labels(&self) -> [&'static str; 4] {
        [
            self.estimator.label(),
            self.admission.label(),
            self.selector.label(),
            self.placer.label(),
        ]
    }

    /// Keep `order` in sync with the machine's live applications: drop
    /// finished jobs, append newly arrived ones (ascending id — the order
    /// `MachineView::live_apps` reports), and forget estimator state for
    /// jobs that died.
    fn refresh_job_list(&mut self, view: &MachineView<'_>) {
        let live = view.live_apps();
        let mut present: BTreeSet<AppId> = live.iter().copied().collect();
        self.order.retain(|a| present.contains(a));
        for a in &self.order {
            present.remove(a);
        }
        // Newly connected jobs go to the end of the circular list.
        self.order.extend(present);
        let live_set: BTreeSet<AppId> = live.into_iter().collect();
        let dead: Vec<AppId> = self
            .known
            .iter()
            .filter(|a| !live_set.contains(a))
            .copied()
            .collect();
        for a in dead {
            self.known.remove(&a);
            self.estimator.forget(a);
        }
    }

    fn emit_stage(&self, at_us: u64, stage: PipelineStage, items: usize) {
        if self.tracer.emits() {
            self.tracer.emit(TraceEvent::StageDecision {
                at_us,
                stage,
                items,
            });
        }
    }
}

impl Scheduler for PolicyStack {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let tracer = self.tracer.clone();
        let ctx = StageCtx {
            view,
            tracer: &tracer,
        };

        // Stage 1 — estimate: settle the finished interval, maintain the
        // circular list (refresh + rotate jobs that ran to the end), and
        // enumerate candidates with their current estimates.
        let t_est = Instant::now();
        self.estimator.settle(&ctx);
        self.refresh_job_list(view);
        let ran: Vec<AppId> = self
            .order
            .iter()
            .copied()
            .filter(|a| self.running.contains(a))
            .collect();
        self.order.retain(|a| !ran.contains(a));
        self.order.extend(ran);
        let cands: Vec<Candidate<AppId>> = self
            .order
            .iter()
            .filter_map(|&app| {
                view.app(app).map(|info| Candidate {
                    key: app,
                    width: info.width(),
                    bbw_per_thread: self.estimator.estimate(app),
                })
            })
            .collect();
        let mut est_ns = t_est.elapsed().as_nanos() as u64;
        self.emit_stage(view.now, PipelineStage::Estimate, cands.len());

        // Stage 2 — admit.
        let t_admit = Instant::now();
        let head = self.admission.admit(&ctx, &cands, view.num_cpus);
        let used: usize = head.iter().map(|&i| cands[i].width).sum();
        debug_assert!(used <= view.num_cpus, "admission overcommitted");
        let free = view.num_cpus.saturating_sub(used);
        if tracer.emits() {
            for &i in &head {
                tracer.emit(TraceEvent::HeadAdmission {
                    at_us: view.now,
                    app: cands[i].key.0,
                    width: cands[i].width,
                });
            }
        }
        self.timings.stages[1].record_ns(t_admit.elapsed().as_nanos() as u64);
        self.emit_stage(view.now, PipelineStage::Admit, head.len());

        // Stage 3 — select.
        let t_select = Instant::now();
        let selection = self.selector.select(&ctx, &cands, &head, free);
        let selected_items = match &selection {
            Selection::Gangs(extra) => extra.len(),
            Selection::Pinned(assignments) => assignments.len(),
        };
        self.timings.stages[2].record_ns(t_select.elapsed().as_nanos() as u64);
        self.emit_stage(view.now, PipelineStage::Select, selected_items);

        // Stage 4 — place.
        let t_place = Instant::now();
        let (pinned, selected_extra) = if self.introspect {
            match &selection {
                Selection::Gangs(extra) => (false, extra.iter().map(|&i| cands[i].key).collect()),
                Selection::Pinned(_) => (true, Vec::new()),
            }
        } else {
            (false, Vec::new())
        };
        let (admitted, assignments) = match selection {
            Selection::Gangs(extra) => {
                let admitted: Vec<AppId> = head
                    .iter()
                    .chain(extra.iter())
                    .map(|&i| cands[i].key)
                    .collect();
                let assignments = self.placer.place(&ctx, &admitted);
                (admitted, assignments)
            }
            Selection::Pinned(assignments) => {
                // Derive the admitted set for the estimator's bookkeeping
                // (first-seen order).
                let mut admitted = Vec::new();
                for a in &assignments {
                    if let Some(t) = view.thread(a.thread) {
                        if !admitted.contains(&t.app) {
                            admitted.push(t.app);
                        }
                    }
                }
                (admitted, assignments)
            }
        };
        self.timings.stages[3].record_ns(t_place.elapsed().as_nanos() as u64);
        self.emit_stage(view.now, PipelineStage::Place, assignments.len());

        // Commit the new quantum into the estimator's bookkeeping (counted
        // as estimate-stage time: it is the measurement half-step).
        let t_commit = Instant::now();
        self.estimator.commit(&ctx, &admitted);
        self.known.extend(admitted.iter().copied());
        if self.introspect {
            self.snapshot = Some(StageSnapshot {
                candidates: cands.iter().map(|c| c.key).collect(),
                admitted_head: head.iter().map(|&i| cands[i].key).collect(),
                selected_extra,
                pinned,
                committed: admitted.clone(),
            });
        }
        self.running = admitted;
        est_ns += t_commit.elapsed().as_nanos() as u64;
        self.timings.stages[0].record_ns(est_ns);

        Decision {
            assignments,
            next_resched_in_us: self.quantum_us,
            sample_period_us: self.estimator.sample_period_us(self.quantum_us),
        }
    }

    fn on_sample(&mut self, view: &MachineView<'_>) {
        let tracer = self.tracer.clone();
        let ctx = StageCtx {
            view,
            tracer: &tracer,
        };
        let t = Instant::now();
        self.estimator.on_sample(&ctx);
        self.timings.stages[0].record_ns(t.elapsed().as_nanos() as u64);
    }

    fn attach_tracer(&mut self, tracer: &EventBus) {
        self.tracer = tracer.clone();
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn stage_timings(&self) -> Option<&StageTimings> {
        Some(&self.timings)
    }

    fn set_introspect(&mut self, on: bool) {
        self.introspect = on;
        if !on {
            self.snapshot = None;
        }
    }

    fn stage_snapshot(&self) -> Option<&StageSnapshot> {
        self.snapshot.as_ref()
    }
}

/// A [`Selector`] driven directly as a [`Scheduler`], with no surrounding
/// pipeline — no estimator, admission, placer, trace emission, or timing.
///
/// Two uses: unit tests that need the selector's own accessors (e.g. the
/// Linux baseline's epoch counter), and the `bench tick-rate` guard that
/// measures what the pipeline indirection costs relative to calling the
/// selection logic directly. Only meaningful for selectors that return
/// [`Selection::Pinned`]; gang selections have no placer here and yield an
/// idle decision.
pub struct SoloSelector<S: Selector> {
    selector: S,
    quantum_us: u64,
    tracer: EventBus,
}

impl<S: Selector> SoloSelector<S> {
    /// Wrap `selector`, rescheduling every `quantum_us`.
    pub fn new(selector: S, quantum_us: u64) -> Self {
        assert!(quantum_us > 0, "quantum must be positive");
        Self {
            selector,
            quantum_us,
            tracer: EventBus::off(),
        }
    }

    /// The wrapped selector.
    pub fn selector(&self) -> &S {
        &self.selector
    }
}

impl<S: Selector> Scheduler for SoloSelector<S> {
    fn schedule(&mut self, view: &MachineView<'_>) -> Decision {
        let ctx = StageCtx {
            view,
            tracer: &self.tracer,
        };
        match self.selector.select(&ctx, &[], &[], view.num_cpus) {
            Selection::Pinned(assignments) => Decision {
                assignments,
                next_resched_in_us: self.quantum_us,
                sample_period_us: None,
            },
            Selection::Gangs(_) => Decision::idle(self.quantum_us),
        }
    }

    fn name(&self) -> &str {
        self.selector.label()
    }
}

#[cfg(test)]
mod tests {
    use super::admission::{Fcfs, HeadOfList, Open};
    use super::estimators::NullEstimator;
    use super::placers::PackedPlacer;
    use super::selectors::{FitnessSelector, NullSelector};
    use super::*;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, ThreadSpec, XEON_4WAY};

    fn machine_with_apps(widths: &[usize]) -> Machine {
        let mut m = Machine::new(XEON_4WAY);
        for (i, &w) in widths.iter().enumerate() {
            let threads = (0..w)
                .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(1.0, 0.2))))
                .collect();
            m.add_app(AppDescriptor::new(format!("a{i}"), threads));
        }
        m
    }

    fn stack() -> PolicyStack {
        PolicyStack::new(
            "test",
            PAPER_QUANTUM_US,
            Box::new(NullEstimator),
            Box::new(HeadOfList),
            Box::new(FitnessSelector),
            Box::new(PackedPlacer),
        )
    }

    #[test]
    fn stack_reports_name_quantum_and_stage_labels() {
        let s = stack();
        assert_eq!(s.name(), "test");
        assert_eq!(s.quantum_us(), PAPER_QUANTUM_US);
        assert_eq!(s.stage_labels(), ["Null", "head", "fitness", "packed"]);
    }

    #[test]
    fn stack_schedules_gangs_and_records_stage_timings() {
        let m = machine_with_apps(&[2, 2]);
        let mut s = stack();
        let d = s.schedule(&m.view());
        assert_eq!(d.assignments.len(), 4, "both 2-wide gangs fit 4 cpus");
        assert_eq!(d.next_resched_in_us, PAPER_QUANTUM_US);
        assert_eq!(d.sample_period_us, None, "null estimator never samples");
        let t = s.stage_timings().expect("stacks expose timings");
        assert!(t.stages.iter().all(|st| st.calls == 1));
    }

    #[test]
    fn stage_decision_events_are_emitted_per_stage() {
        let m = machine_with_apps(&[2]);
        let mut s = stack();
        let (bus, handle) = EventBus::memory();
        s.set_tracer(bus);
        let _ = s.schedule(&m.view());
        let stages: Vec<String> = handle
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StageDecision { stage, .. } => Some(stage.as_str().to_string()),
                _ => None,
            })
            .collect();
        assert_eq!(stages, vec!["estimate", "admit", "select", "place"]);
    }

    #[test]
    fn fcfs_null_stack_rotates_jobs() {
        // Three 2-wide gangs, 4 cpus: FCFS admits two per quantum and the
        // rotation must cycle all three through over successive quanta.
        let mut m = machine_with_apps(&[2, 2, 2]);
        let mut s = PolicyStack::new(
            "rr",
            PAPER_QUANTUM_US,
            Box::new(NullEstimator),
            Box::new(Fcfs),
            Box::new(NullSelector),
            Box::new(PackedPlacer),
        );
        let mut seen = BTreeSet::new();
        for _ in 0..3 {
            let d = s.schedule(&m.view());
            for a in &d.assignments {
                seen.insert(m.view().thread(a.thread).unwrap().app);
            }
            let _ = m.run(
                &mut busbw_sim::testkit::Replay::new(d),
                busbw_sim::StopCondition::At(m.now() + PAPER_QUANTUM_US),
            );
        }
        assert_eq!(seen.len(), 3, "rotation starved a gang: {seen:?}");
    }

    #[test]
    fn open_admission_with_null_selector_idles() {
        let m = machine_with_apps(&[2]);
        let mut s = PolicyStack::new(
            "idle",
            PAPER_QUANTUM_US,
            Box::new(NullEstimator),
            Box::new(Open),
            Box::new(NullSelector),
            Box::new(PackedPlacer),
        );
        let d = s.schedule(&m.view());
        assert!(d.assignments.is_empty());
        assert_eq!(d.next_resched_in_us, PAPER_QUANTUM_US);
    }
}
