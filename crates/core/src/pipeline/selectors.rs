//! Selector stages: how the processors left after admission are filled.
//!
//! The Linux baselines' selectors (pinned thread→cpu schedules) live next
//! to their configs in [`crate::linux`] and [`crate::linux26`]; this
//! module holds the gang selectors.

use busbw_sim::AppId;
use busbw_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{Selection, Selector, StageCtx};
use crate::model::predict_set_value;
use crate::selection::{fitness_fill, Candidate};

/// The paper's Eq. (1)/(2) fill (§4): repeatedly admit the fitting job
/// whose `BBW/thread` is closest to the available bus bandwidth per
/// unallocated processor, recomputing `ABBW/proc` after every admission.
/// Emits a `GangSelected` trace event per admission.
#[derive(Debug, Default, Clone, Copy)]
pub struct FitnessSelector;

impl Selector for FitnessSelector {
    fn label(&self) -> &'static str {
        "fitness"
    }

    fn select(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        admitted: &[usize],
        free: usize,
    ) -> Selection {
        let mut free = free;
        let mut allocated_bbw = 0.0f64;
        for &i in admitted {
            allocated_bbw += cands[i].bbw_per_thread * cands[i].width as f64;
        }
        let mut all = admitted.to_vec();
        let mut report = Vec::new();
        fitness_fill(
            cands,
            ctx.view.bus_capacity,
            &mut free,
            &mut allocated_bbw,
            &mut all,
            &mut report,
        );
        if ctx.tracer.emits() {
            for adm in &report {
                ctx.tracer.emit(TraceEvent::GangSelected {
                    at_us: ctx.view.now,
                    app: adm.key.0,
                    width: adm.width,
                    fitness: adm.fitness.unwrap_or(0.0),
                    available_per_proc: adm.available_per_proc.unwrap_or(0.0),
                });
            }
        }
        Selection::Gangs(all.split_off(admitted.len()))
    }
}

/// Uniformly random fill over the fitting jobs (seeded, deterministic) —
/// the comparator that isolates what the fitness heuristic adds beyond
/// gang scheduling itself.
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Seeded random selector.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Selector for RandomSelector {
    fn label(&self) -> &'static str {
        "random"
    }

    fn select(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        admitted: &[usize],
        free: usize,
    ) -> Selection {
        let mut free = free;
        let mut all = admitted.to_vec();
        let mut extra = Vec::new();
        loop {
            let fitting: Vec<usize> = (0..cands.len())
                .filter(|i| !all.contains(i) && cands[*i].width <= free)
                .collect();
            if fitting.is_empty() {
                break;
            }
            let pick = fitting[self.rng.gen_range(0..fitting.len())];
            all.push(pick);
            extra.push(pick);
            free -= cands[pick].width;
        }
        Selection::Gangs(extra)
    }
}

/// Greedily admit the highest-measured-bandwidth fitting job — the
/// "maximize utilization" strawman that saturates the bus. Ties keep the
/// candidate furthest from the list head (`max_by` keeps the last
/// maximum), matching the monolithic comparator it replaced.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedySelector;

impl Selector for GreedySelector {
    fn label(&self) -> &'static str {
        "greedy"
    }

    fn select(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        admitted: &[usize],
        free: usize,
    ) -> Selection {
        let mut free = free;
        let mut all = admitted.to_vec();
        let mut extra = Vec::new();
        loop {
            let best = (0..cands.len())
                .filter(|i| !all.contains(i) && cands[*i].width <= free)
                .max_by(|&a, &b| cands[a].bbw_per_thread.total_cmp(&cands[b].bbw_per_thread));
            match best {
                Some(i) => {
                    all.push(i);
                    extra.push(i);
                    free -= cands[i].width;
                }
                None => break,
            }
        }
        Selection::Gangs(extra)
    }
}

/// Model-driven lookahead: admit the job with the best predicted marginal
/// aggregate progress under the dilation model
/// ([`crate::model::predict_set_value`]), stopping when every remaining
/// addition would slow the set down. Unlike [`FitnessSelector`] this can
/// leave processors idle on purpose.
#[derive(Debug, Default, Clone, Copy)]
pub struct LookaheadSelector;

impl Selector for LookaheadSelector {
    fn label(&self) -> &'static str {
        "lookahead"
    }

    fn select(
        &mut self,
        ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        admitted: &[usize],
        free: usize,
    ) -> Selection {
        let cap = ctx.view.bus_capacity;
        let jobs_of = |set: &[usize]| -> Vec<(usize, f64, f64)> {
            set.iter()
                .map(|&i| (cands[i].width, cands[i].bbw_per_thread, 1.0))
                .collect()
        };
        let mut free = free;
        let mut all = admitted.to_vec();
        let mut extra = Vec::new();
        loop {
            let base = predict_set_value(&jobs_of(&all), cap);
            let mut best: Option<(f64, usize)> = None;
            for (i, c) in cands.iter().enumerate() {
                if all.contains(&i) || c.width == 0 || c.width > free {
                    continue;
                }
                let mut trial = all.clone();
                trial.push(i);
                let gain = predict_set_value(&jobs_of(&trial), cap) - base;
                if best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, i));
                }
            }
            match best {
                Some((gain, i)) if gain > 0.0 => {
                    all.push(i);
                    extra.push(i);
                    free -= cands[i].width;
                }
                _ => break,
            }
        }
        Selection::Gangs(extra)
    }
}

/// Select nothing beyond what admission granted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSelector;

impl Selector for NullSelector {
    fn label(&self) -> &'static str {
        "none"
    }

    fn select(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        _cands: &[Candidate<AppId>],
        _admitted: &[usize],
        _free: usize,
    ) -> Selection {
        Selection::Gangs(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{Machine, XEON_4WAY};
    use busbw_trace::EventBus;

    fn cands(specs: &[(usize, f64)]) -> Vec<Candidate<AppId>> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(w, b))| Candidate {
                key: AppId(i as u64),
                width: w,
                bbw_per_thread: b,
            })
            .collect()
    }

    fn gangs(
        s: &mut dyn Selector,
        specs: &[(usize, f64)],
        admitted: &[usize],
        free: usize,
    ) -> Vec<usize> {
        let m = Machine::new(XEON_4WAY);
        let view = m.view();
        let bus = EventBus::off();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        match s.select(&ctx, &cands(specs), admitted, free) {
            Selection::Gangs(v) => v,
            Selection::Pinned(_) => panic!("gang selector returned pinned"),
        }
    }

    #[test]
    fn fitness_selector_pairs_heavy_head_with_lightest_partner() {
        // Head (idx 0, 11 tx/µs/thread) already admitted; ABBW/proc ≈ 3.75
        // → the idle job beats the 10.0 job.
        let extra = gangs(
            &mut FitnessSelector,
            &[(2, 11.0), (2, 10.0), (2, 0.0)],
            &[0],
            2,
        );
        assert_eq!(extra, vec![2]);
    }

    #[test]
    fn greedy_selector_prefers_heaviest_and_keeps_last_on_ties() {
        let extra = gangs(&mut GreedySelector, &[(2, 3.0), (1, 8.0), (1, 8.0)], &[], 4);
        // Tie between idx 1 and 2 at 8.0: max_by keeps the last (2).
        assert_eq!(extra[0], 2);
        assert_eq!(extra.len(), 3, "everything fits eventually");
    }

    #[test]
    fn random_selector_is_deterministic_per_seed() {
        let specs = [(1, 1.0), (1, 1.0), (1, 1.0), (1, 1.0)];
        let a = gangs(&mut RandomSelector::new(9), &specs, &[], 3);
        let b = gangs(&mut RandomSelector::new(9), &specs, &[], 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn lookahead_declines_additions_that_slow_the_set() {
        // One saturating job admitted (2×14 = 28 of 29.5 tx/µs); adding
        // the second saturating job dilates everyone. The idle job still
        // helps.
        let extra = gangs(
            &mut LookaheadSelector,
            &[(2, 14.0), (2, 14.0), (2, 0.01)],
            &[0],
            2,
        );
        assert_eq!(extra, vec![2], "lookahead must skip the saturating pair");
    }

    #[test]
    fn null_selector_selects_nothing() {
        assert!(gangs(&mut NullSelector, &[(1, 1.0)], &[], 4).is_empty());
    }
}
