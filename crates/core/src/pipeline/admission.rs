//! Admission stages: unconditional admissions made before any scoring.

use busbw_sim::AppId;

use super::{Admission, StageCtx};
use crate::selection::{head_position, Candidate};

/// The paper's head-of-list rule (§4): the first job in circular-list
/// order that fits at all is admitted unconditionally, guaranteeing
/// starvation freedom under rotation.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeadOfList;

impl Admission for HeadOfList {
    fn label(&self) -> &'static str {
        "head"
    }

    fn admit(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        free: usize,
    ) -> Vec<usize> {
        head_position(cands, free).into_iter().collect()
    }
}

/// A stricter head rule: only the literal list head is guaranteed — if it
/// does not fit, nothing is admitted unconditionally. (The random and
/// greedy comparator schedulers behave this way.)
#[derive(Debug, Default, Clone, Copy)]
pub struct StrictHead;

impl Admission for StrictHead {
    fn label(&self) -> &'static str {
        "strict-head"
    }

    fn admit(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        free: usize,
    ) -> Vec<usize> {
        match cands.first() {
            Some(c) if c.width > 0 && c.width <= free => vec![0],
            _ => Vec::new(),
        }
    }
}

/// First-come-first-served: admit every fitting job in list order until
/// the machine is full — gang scheduling with rotation and nothing else
/// (the round-robin comparator).
#[derive(Debug, Default, Clone, Copy)]
pub struct Fcfs;

impl Admission for Fcfs {
    fn label(&self) -> &'static str {
        "fcfs"
    }

    fn admit(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        free: usize,
    ) -> Vec<usize> {
        let mut free = free;
        let mut admitted = Vec::new();
        for (i, c) in cands.iter().enumerate() {
            if c.width > 0 && c.width <= free {
                admitted.push(i);
                free -= c.width;
                if free == 0 {
                    break;
                }
            }
        }
        admitted
    }
}

/// Widest-gang-first priority admission: admit fitting jobs in decreasing
/// width order (list order breaks ties), packing the machine before any
/// bandwidth scoring runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct WidestFirst;

impl Admission for WidestFirst {
    fn label(&self) -> &'static str {
        "widest"
    }

    fn admit(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        cands: &[Candidate<AppId>],
        free: usize,
    ) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..cands.len()).filter(|&i| cands[i].width > 0).collect();
        idx.sort_by(|&a, &b| cands[b].width.cmp(&cands[a].width).then(a.cmp(&b)));
        let mut free = free;
        let mut admitted = Vec::new();
        for i in idx {
            if cands[i].width <= free {
                admitted.push(i);
                free -= cands[i].width;
                if free == 0 {
                    break;
                }
            }
        }
        admitted
    }
}

/// No unconditional admissions — everything is left to the selector (the
/// Linux baselines, which schedule threads, not gangs).
#[derive(Debug, Default, Clone, Copy)]
pub struct Open;

impl Admission for Open {
    fn label(&self) -> &'static str {
        "open"
    }

    fn admit(
        &mut self,
        _ctx: &StageCtx<'_, '_>,
        _cands: &[Candidate<AppId>],
        _free: usize,
    ) -> Vec<usize> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{Machine, XEON_4WAY};
    use busbw_trace::EventBus;

    fn cands(widths: &[usize]) -> Vec<Candidate<AppId>> {
        widths
            .iter()
            .enumerate()
            .map(|(i, &w)| Candidate {
                key: AppId(i as u64),
                width: w,
                bbw_per_thread: 0.0,
            })
            .collect()
    }

    fn admit(a: &mut dyn Admission, widths: &[usize], free: usize) -> Vec<usize> {
        let m = Machine::new(XEON_4WAY);
        let view = m.view();
        let bus = EventBus::off();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        a.admit(&ctx, &cands(widths), free)
    }

    #[test]
    fn head_of_list_skips_oversized_heads() {
        assert_eq!(admit(&mut HeadOfList, &[6, 2, 2], 4), vec![1]);
        assert_eq!(admit(&mut HeadOfList, &[2, 2], 4), vec![0]);
        assert!(admit(&mut HeadOfList, &[], 4).is_empty());
    }

    #[test]
    fn strict_head_admits_only_the_literal_head() {
        assert_eq!(admit(&mut StrictHead, &[2, 2], 4), vec![0]);
        assert!(admit(&mut StrictHead, &[6, 2], 4).is_empty());
    }

    #[test]
    fn fcfs_fills_in_order() {
        assert_eq!(admit(&mut Fcfs, &[2, 3, 2], 4), vec![0, 2]);
        assert_eq!(admit(&mut Fcfs, &[1, 1, 1, 1, 1], 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn widest_first_prefers_big_gangs_with_stable_ties() {
        assert_eq!(admit(&mut WidestFirst, &[1, 3, 2], 4), vec![1, 0]);
        // Tie on width: earlier index wins.
        assert_eq!(admit(&mut WidestFirst, &[2, 2, 2], 4), vec![0, 1]);
    }

    #[test]
    fn open_admits_nothing() {
        assert!(admit(&mut Open, &[1, 1], 4).is_empty());
    }
}
