//! Estimator stages: the measurement bookkeeping each policy family used
//! to carry inline, factored out of the monolithic schedulers.

use std::collections::BTreeMap;

use busbw_perfmon::EventKind;
use busbw_sim::{AppId, MachineView, SimTime};
use busbw_trace::TraceEvent;

use super::{Estimator, StageCtx, PAPER_SAMPLES_PER_QUANTUM};
use crate::estimator::BandwidthEstimator;
use crate::reconstruct::DemandTracker;

/// Total transactions issued so far by `app`'s threads.
pub(crate) fn app_tx(view: &MachineView<'_>, app: AppId) -> f64 {
    view.app(app)
        .map(|a| {
            a.threads
                .iter()
                .map(|t| view.registry.total(t.key(), EventKind::BusTransactions))
                .sum()
        })
        .unwrap_or(0.0)
}

/// The paper policies' measurement path (§4): counter deltas are
/// equipartitioned over a job's threads, passed through demand
/// reconstruction (consumption × mean dilation — under saturation a raw
/// measurement is only a lower bound on the requirement), and fed to a
/// [`BandwidthEstimator`] — whole-quantum rates at quantum boundaries and
/// finer-grained rates at the twice-per-quantum counter samples.
pub struct ReconstructingEstimator {
    inner: Box<dyn BandwidthEstimator>,
    samples_per_quantum: u32,
    /// Jobs committed for the current quantum.
    running: Vec<AppId>,
    /// Per-app cumulative transaction totals at the last quantum boundary.
    quantum_snapshot: BTreeMap<AppId, f64>,
    /// Per-app cumulative transaction totals at the last counter sample.
    sample_snapshot: BTreeMap<AppId, f64>,
    last_boundary_us: SimTime,
    last_sample_us: SimTime,
    /// IOQ-dilation integral at the last quantum boundary / sample.
    dilation_at_boundary: f64,
    dilation_at_sample: f64,
    demand: DemandTracker,
}

impl ReconstructingEstimator {
    /// Wrap `inner` with the paper's two samples per quantum.
    pub fn new(inner: Box<dyn BandwidthEstimator>) -> Self {
        Self::with_samples(inner, PAPER_SAMPLES_PER_QUANTUM)
    }

    /// Wrap `inner` with a custom sampling rate.
    ///
    /// # Panics
    /// Panics if `samples_per_quantum` is zero.
    pub fn with_samples(inner: Box<dyn BandwidthEstimator>, samples_per_quantum: u32) -> Self {
        assert!(
            samples_per_quantum >= 1,
            "need at least one sample per quantum"
        );
        Self {
            inner,
            samples_per_quantum,
            running: Vec::new(),
            quantum_snapshot: BTreeMap::new(),
            sample_snapshot: BTreeMap::new(),
            last_boundary_us: 0,
            last_sample_us: 0,
            dilation_at_boundary: 0.0,
            dilation_at_sample: 0.0,
            demand: DemandTracker::new(),
        }
    }
}

impl Estimator for ReconstructingEstimator {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn settle(&mut self, ctx: &StageCtx<'_, '_>) {
        let view = ctx.view;
        let dt = view.now.saturating_sub(self.last_boundary_us);
        if dt == 0 {
            return;
        }
        let lambda = (view.dilation_integral - self.dilation_at_boundary) / dt as f64;
        for &app in &self.running {
            let Some(info) = view.app(app) else { continue };
            let total = app_tx(view, app);
            let before = self.quantum_snapshot.get(&app).copied().unwrap_or(0.0);
            let width = info.threads.len().max(1);
            let per_thread = (total - before).max(0.0) / dt as f64 / width as f64;
            let rec = self.demand.observe_detailed(app, per_thread, lambda);
            if ctx.tracer.emits() {
                ctx.tracer.emit(TraceEvent::Reconstruct {
                    at_us: view.now,
                    app: app.0,
                    measured_per_thread: rec.measured_per_thread,
                    dilation: rec.dilation,
                    demand_per_thread: rec.demand_per_thread,
                });
            }
            self.inner.record_quantum(app, rec.demand_per_thread);
        }
    }

    fn estimate(&self, app: AppId) -> f64 {
        self.inner.estimate(app)
    }

    fn commit(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) {
        let view = ctx.view;
        for &app in admitted {
            let t = app_tx(view, app);
            self.quantum_snapshot.insert(app, t);
            self.sample_snapshot.insert(app, t);
        }
        self.running = admitted.to_vec();
        self.last_boundary_us = view.now;
        self.last_sample_us = view.now;
        self.dilation_at_boundary = view.dilation_integral;
        self.dilation_at_sample = view.dilation_integral;
    }

    fn on_sample(&mut self, ctx: &StageCtx<'_, '_>) {
        let view = ctx.view;
        let dt = view.now.saturating_sub(self.last_sample_us);
        if dt == 0 {
            return;
        }
        let lambda = (view.dilation_integral - self.dilation_at_sample) / dt as f64;
        for &app in &self.running {
            let Some(info) = view.app(app) else { continue };
            let total = app_tx(view, app);
            let before = self.sample_snapshot.get(&app).copied().unwrap_or(0.0);
            let width = info.threads.len().max(1);
            let per_thread = (total - before).max(0.0) / dt as f64 / width as f64;
            let demand = self.demand.observe(app, per_thread, lambda);
            self.inner.record_sample(app, demand);
            self.sample_snapshot.insert(app, total);
        }
        self.dilation_at_sample = view.dilation_integral;
        self.last_sample_us = view.now;
    }

    fn sample_period_us(&self, quantum_us: u64) -> Option<u64> {
        Some(quantum_us / self.samples_per_quantum as u64)
    }

    fn forget(&mut self, app: AppId) {
        self.quantum_snapshot.remove(&app);
        self.sample_snapshot.remove(&app);
        self.inner.forget(app);
        self.demand.forget(app);
    }
}

/// The comparator gang schedulers' simpler measurement: whole-quantum
/// counter deltas per thread, scaled by the mean dilation (clamped to
/// ≥ 1), with no mid-quantum sampling and no demand reconstruction.
#[derive(Default)]
pub struct RawRateEstimator {
    running: Vec<AppId>,
    snapshot: BTreeMap<AppId, f64>,
    last_boundary_us: SimTime,
    dilation_at_boundary: f64,
    /// Last measured per-thread rate.
    rates: BTreeMap<AppId, f64>,
}

impl RawRateEstimator {
    /// A fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Estimator for RawRateEstimator {
    fn label(&self) -> &'static str {
        "RawRate"
    }

    fn settle(&mut self, ctx: &StageCtx<'_, '_>) {
        let view = ctx.view;
        let dt = view.now.saturating_sub(self.last_boundary_us);
        if dt == 0 {
            return;
        }
        let lambda = ((view.dilation_integral - self.dilation_at_boundary) / dt as f64).max(1.0);
        for &app in &self.running {
            let Some(info) = view.app(app) else { continue };
            let total = app_tx(view, app);
            let before = self.snapshot.get(&app).copied().unwrap_or(0.0);
            let rate = (total - before).max(0.0) / dt as f64 / info.width().max(1) as f64 * lambda;
            self.rates.insert(app, rate);
        }
    }

    fn estimate(&self, app: AppId) -> f64 {
        self.rates.get(&app).copied().unwrap_or(0.0)
    }

    fn commit(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) {
        let view = ctx.view;
        for &app in admitted {
            self.snapshot.insert(app, app_tx(view, app));
        }
        self.running = admitted.to_vec();
        self.last_boundary_us = view.now;
        self.dilation_at_boundary = view.dilation_integral;
    }

    fn forget(&mut self, app: AppId) {
        self.rates.remove(&app);
        self.snapshot.remove(&app);
    }
}

/// No estimation at all — for stacks whose selector ignores bandwidth
/// entirely (the Linux baselines).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEstimator;

impl Estimator for NullEstimator {
    fn label(&self) -> &'static str {
        "Null"
    }

    fn settle(&mut self, _ctx: &StageCtx<'_, '_>) {}

    fn estimate(&self, _app: AppId) -> f64 {
        0.0
    }

    fn commit(&mut self, _ctx: &StageCtx<'_, '_>, _admitted: &[AppId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::LatestQuantumEstimator;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, ThreadSpec, XEON_4WAY};
    use busbw_trace::EventBus;

    #[test]
    fn reconstructing_estimator_rejects_zero_samples() {
        let r = std::panic::catch_unwind(|| {
            ReconstructingEstimator::with_samples(Box::new(LatestQuantumEstimator::new()), 0)
        });
        assert!(r.is_err());
    }

    #[test]
    fn sample_periods_follow_the_configured_rate() {
        let e = ReconstructingEstimator::new(Box::new(LatestQuantumEstimator::new()));
        assert_eq!(e.sample_period_us(200_000), Some(100_000));
        let e3 = ReconstructingEstimator::with_samples(Box::new(LatestQuantumEstimator::new()), 4);
        assert_eq!(e3.sample_period_us(200_000), Some(50_000));
        assert_eq!(RawRateEstimator::new().sample_period_us(200_000), None);
        assert_eq!(NullEstimator.sample_period_us(200_000), None);
    }

    #[test]
    fn null_estimator_is_inert() {
        let m = Machine::new(XEON_4WAY);
        let bus = EventBus::off();
        let view = m.view();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        let mut e = NullEstimator;
        e.settle(&ctx);
        e.commit(&ctx, &[]);
        assert_eq!(e.estimate(AppId(3)), 0.0);
        assert_eq!(e.label(), "Null");
    }

    #[test]
    fn raw_rate_measures_committed_jobs_only() {
        let mut m = Machine::new(XEON_4WAY);
        let threads = (0..2)
            .map(|_| ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(4.0, 0.5))))
            .collect();
        let a = m.add_app(AppDescriptor::new("a", threads));
        let mut e = RawRateEstimator::new();
        let bus = EventBus::off();
        {
            let view = m.view();
            let ctx = StageCtx {
                view: &view,
                tracer: &bus,
            };
            e.commit(&ctx, &[a]);
        }
        // Run the app for a quantum, then settle.
        let assignments: Vec<busbw_sim::Assignment> = {
            let view = m.view();
            let info = view.app(a).unwrap();
            info.threads
                .iter()
                .enumerate()
                .map(|(i, &t)| busbw_sim::Assignment {
                    thread: t,
                    cpu: busbw_sim::CpuId(i),
                })
                .collect()
        };
        let d = busbw_sim::Decision {
            assignments,
            next_resched_in_us: 200_000,
            sample_period_us: None,
        };
        let _ = m.run(
            &mut busbw_sim::testkit::Replay::new(d),
            busbw_sim::StopCondition::At(200_000),
        );
        let view = m.view();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        e.settle(&ctx);
        let est = e.estimate(a);
        assert!((2.0..6.5).contains(&est), "raw rate estimate {est}");
        e.forget(a);
        assert_eq!(e.estimate(a), 0.0);
    }
}
