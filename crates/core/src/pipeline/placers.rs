//! Placer stages: mapping admitted gangs onto processors.

use busbw_sim::{AppId, Assignment, CpuId, MachineView};

use super::{Placer, StageCtx};

/// Affinity-preserving placement of whole gangs: each thread takes its
/// previous cpu if free, then its warmest cache, then the lowest free
/// cpu. This is the placement every paper policy and comparator used
/// before the pipeline split (it "packs" threads toward low cpu indices).
pub fn place_packed(view: &MachineView<'_>, admitted: &[AppId]) -> Vec<Assignment> {
    let mut free: Vec<bool> = vec![true; view.num_cpus];
    let mut assignments = Vec::new();
    let mut pending = Vec::new();

    // Pass 1: honor last-cpu affinity.
    for &app in admitted {
        let Some(info) = view.app(app) else { continue };
        for &tid in info.threads {
            let Some(t) = view.thread(tid) else { continue };
            if !t.is_runnable() {
                continue;
            }
            match t.last_cpu {
                Some(c) if free[c.0] => {
                    free[c.0] = false;
                    assignments.push(Assignment {
                        thread: tid,
                        cpu: c,
                    });
                }
                _ => pending.push(tid),
            }
        }
    }
    // Pass 2: warmest cache, then lowest free cpu.
    for tid in pending {
        let warm = view.warmest_cpu(tid).map(|(c, _)| c).filter(|c| free[c.0]);
        let cpu = warm.or_else(|| free.iter().position(|&f| f).map(CpuId));
        if let Some(c) = cpu {
            free[c.0] = false;
            assignments.push(Assignment {
                thread: tid,
                cpu: c,
            });
        }
    }
    assignments
}

/// Collect the runnable threads of `admitted`, split into those whose
/// last cpu is free (affinity hits, assigned immediately) and the rest.
fn affinity_pass(
    view: &MachineView<'_>,
    admitted: &[AppId],
    free: &mut [bool],
    assignments: &mut Vec<Assignment>,
) -> Vec<busbw_sim::ThreadId> {
    let mut pending = Vec::new();
    for &app in admitted {
        let Some(info) = view.app(app) else { continue };
        for &tid in info.threads {
            let Some(t) = view.thread(tid) else { continue };
            if !t.is_runnable() {
                continue;
            }
            match t.last_cpu {
                Some(c) if free[c.0] => {
                    free[c.0] = false;
                    assignments.push(Assignment {
                        thread: tid,
                        cpu: c,
                    });
                }
                _ => pending.push(tid),
            }
        }
    }
    pending
}

/// [`place_packed`] as a stage — the default placer of every preset.
#[derive(Debug, Default, Clone, Copy)]
pub struct PackedPlacer;

impl Placer for PackedPlacer {
    fn label(&self) -> &'static str {
        "packed"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        place_packed(ctx.view, admitted)
    }
}

/// Spread threads across physical cores: after the affinity pass, each
/// remaining thread goes to a free cpu on the core with the fewest busy
/// hardware threads (lowest cpu index breaks ties). On a non-SMT machine
/// every core has one cpu and this degenerates to lowest-free-cpu
/// placement without the warmest-cache step.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScatterPlacer;

impl Placer for ScatterPlacer {
    fn label(&self) -> &'static str {
        "scatter"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let pending = affinity_pass(view, admitted, &mut free, &mut assignments);
        for tid in pending {
            let busy_on_core = |cpu: usize| -> usize {
                (0..view.num_cpus)
                    .filter(|&o| view.core_of(CpuId(o)) == view.core_of(CpuId(cpu)) && !free[o])
                    .count()
            };
            let cpu = (0..view.num_cpus)
                .filter(|&c| free[c])
                .min_by_key(|&c| (busy_on_core(c), c));
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

/// SMT-aware placement: after the affinity pass, prefer a free cpu on a
/// fully idle core (no busy siblings), then the warmest cache, then the
/// lowest free cpu — avoiding sibling contention before it starts.
#[derive(Debug, Default, Clone, Copy)]
pub struct SmtAwarePlacer;

impl Placer for SmtAwarePlacer {
    fn label(&self) -> &'static str {
        "smt"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let pending = affinity_pass(view, admitted, &mut free, &mut assignments);
        for tid in pending {
            let core_idle = |cpu: usize| -> bool {
                (0..view.num_cpus)
                    .filter(|&o| view.core_of(CpuId(o)) == view.core_of(CpuId(cpu)))
                    .all(|o| free[o])
            };
            let idle_core_cpu = (0..view.num_cpus).find(|&c| free[c] && core_idle(c));
            let cpu = idle_core_cpu
                .or_else(|| view.warmest_cpu(tid).map(|(c, _)| c.0).filter(|&c| free[c]))
                .or_else(|| free.iter().position(|&f| f));
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, ThreadSpec, XEON_4WAY, XEON_4WAY_HT};
    use busbw_trace::EventBus;

    fn machine(cfg: busbw_sim::MachineConfig, widths: &[usize]) -> (Machine, Vec<AppId>) {
        let mut m = Machine::new(cfg);
        let ids = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let threads = (0..w)
                    .map(|_| {
                        ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(1.0, 0.2)))
                    })
                    .collect();
                m.add_app(AppDescriptor::new(format!("a{i}"), threads))
            })
            .collect();
        (m, ids)
    }

    fn place(p: &mut dyn Placer, m: &Machine, admitted: &[AppId]) -> Vec<Assignment> {
        let view = m.view();
        let bus = EventBus::off();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        p.place(&ctx, admitted)
    }

    #[test]
    fn packed_fills_lowest_cpus_first() {
        let (m, ids) = machine(XEON_4WAY, &[2]);
        let a = place(&mut PackedPlacer, &m, &ids);
        let mut cpus: Vec<usize> = a.iter().map(|x| x.cpu.0).collect();
        cpus.sort();
        assert_eq!(cpus, vec![0, 1]);
    }

    #[test]
    fn smt_aware_spreads_a_pair_across_idle_cores() {
        // 8 hardware threads, 4 cores (siblings 0-1, 2-3, ...): a 2-thread
        // gang must land on two different cores, not cpu 0 and 1.
        let (m, ids) = machine(XEON_4WAY_HT, &[2]);
        let a = place(&mut SmtAwarePlacer, &m, &ids);
        assert_eq!(a.len(), 2);
        let v = m.view();
        assert_ne!(
            v.core_of(a[0].cpu),
            v.core_of(a[1].cpu),
            "siblings shared a core: {a:?}"
        );
    }

    #[test]
    fn scatter_balances_threads_over_cores() {
        let (m, ids) = machine(XEON_4WAY_HT, &[4]);
        let a = place(&mut ScatterPlacer, &m, &ids);
        assert_eq!(a.len(), 4);
        let v = m.view();
        let mut cores: Vec<usize> = a.iter().map(|x| v.core_of(x.cpu)).collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), 4, "4 threads should land on 4 cores: {a:?}");
    }

    #[test]
    fn placers_never_double_book_a_cpu() {
        let (m, ids) = machine(XEON_4WAY, &[2, 2]);
        for p in [
            &mut PackedPlacer as &mut dyn Placer,
            &mut ScatterPlacer,
            &mut SmtAwarePlacer,
        ] {
            let a = place(p, &m, &ids);
            let mut cpus: Vec<usize> = a.iter().map(|x| x.cpu.0).collect();
            cpus.sort();
            cpus.dedup();
            assert_eq!(cpus.len(), a.len(), "double-booked cpu");
        }
    }
}
