//! Placer stages: mapping admitted gangs onto processors.

use busbw_sim::{AppId, Assignment, CpuId, MachineView};

use super::{Placer, StageCtx};

/// Affinity-preserving placement of whole gangs: each thread takes its
/// previous cpu if free, then its warmest cache, then the lowest free
/// cpu. This is the placement every paper policy and comparator used
/// before the pipeline split (it "packs" threads toward low cpu indices).
pub fn place_packed(view: &MachineView<'_>, admitted: &[AppId]) -> Vec<Assignment> {
    let mut free: Vec<bool> = vec![true; view.num_cpus];
    let mut assignments = Vec::new();
    let mut pending = Vec::new();

    // Pass 1: honor last-cpu affinity.
    for &app in admitted {
        let Some(info) = view.app(app) else { continue };
        for &tid in info.threads {
            let Some(t) = view.thread(tid) else { continue };
            if !t.is_runnable() {
                continue;
            }
            match t.last_cpu {
                Some(c) if free[c.0] => {
                    free[c.0] = false;
                    assignments.push(Assignment {
                        thread: tid,
                        cpu: c,
                    });
                }
                _ => pending.push(tid),
            }
        }
    }
    // Pass 2: warmest cache, then lowest free cpu.
    for tid in pending {
        let warm = view.warmest_cpu(tid).map(|(c, _)| c).filter(|c| free[c.0]);
        let cpu = warm.or_else(|| free.iter().position(|&f| f).map(CpuId));
        if let Some(c) = cpu {
            free[c.0] = false;
            assignments.push(Assignment {
                thread: tid,
                cpu: c,
            });
        }
    }
    assignments
}

/// Collect the runnable threads of `admitted`, split into those whose
/// last cpu is free (affinity hits, assigned immediately) and the rest.
fn affinity_pass(
    view: &MachineView<'_>,
    admitted: &[AppId],
    free: &mut [bool],
    assignments: &mut Vec<Assignment>,
) -> Vec<busbw_sim::ThreadId> {
    let mut pending = Vec::new();
    for &app in admitted {
        let Some(info) = view.app(app) else { continue };
        for &tid in info.threads {
            let Some(t) = view.thread(tid) else { continue };
            if !t.is_runnable() {
                continue;
            }
            match t.last_cpu {
                Some(c) if free[c.0] => {
                    free[c.0] = false;
                    assignments.push(Assignment {
                        thread: tid,
                        cpu: c,
                    });
                }
                _ => pending.push(tid),
            }
        }
    }
    pending
}

/// [`place_packed`] as a stage — the default placer of every preset.
#[derive(Debug, Default, Clone, Copy)]
pub struct PackedPlacer;

impl Placer for PackedPlacer {
    fn label(&self) -> &'static str {
        "packed"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        place_packed(ctx.view, admitted)
    }
}

/// Spread threads across physical cores: after the affinity pass, each
/// remaining thread goes to a free cpu on the core with the fewest busy
/// hardware threads (lowest cpu index breaks ties). On a non-SMT machine
/// every core has one cpu and this degenerates to lowest-free-cpu
/// placement without the warmest-cache step.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScatterPlacer;

impl Placer for ScatterPlacer {
    fn label(&self) -> &'static str {
        "scatter"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let pending = affinity_pass(view, admitted, &mut free, &mut assignments);
        for tid in pending {
            let busy_on_core = |cpu: usize| -> usize {
                (0..view.num_cpus)
                    .filter(|&o| view.core_of(CpuId(o)) == view.core_of(CpuId(cpu)) && !free[o])
                    .count()
            };
            let cpu = (0..view.num_cpus)
                .filter(|&c| free[c])
                .min_by_key(|&c| (busy_on_core(c), c));
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

/// SMT-aware placement: after the affinity pass, prefer a free cpu on a
/// fully idle core (no busy siblings), then the warmest cache, then the
/// lowest free cpu — avoiding sibling contention before it starts.
#[derive(Debug, Default, Clone, Copy)]
pub struct SmtAwarePlacer;

impl Placer for SmtAwarePlacer {
    fn label(&self) -> &'static str {
        "smt"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let pending = affinity_pass(view, admitted, &mut free, &mut assignments);
        for tid in pending {
            let core_idle = |cpu: usize| -> bool {
                (0..view.num_cpus)
                    .filter(|&o| view.core_of(CpuId(o)) == view.core_of(CpuId(cpu)))
                    .all(|o| free[o])
            };
            let idle_core_cpu = (0..view.num_cpus).find(|&c| free[c] && core_idle(c));
            let cpu = idle_core_cpu
                .or_else(|| view.warmest_cpu(tid).map(|(c, _)| c.0).filter(|&c| free[c]))
                .or_else(|| free.iter().position(|&f| f));
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

/// Socket-aware gang packing: keep each gang's threads together on one
/// socket so their sharing stays on the local bus. The target is the
/// gang's home socket (first-touch) when it can hold the whole gang,
/// else the socket with the most free cpus (lowest index breaks ties);
/// overflow spills to the lowest free cpu anywhere. On a single-socket
/// machine every cpu is socket 0 and this is lowest-free-cpu placement.
#[derive(Debug, Default, Clone, Copy)]
pub struct PackLocalPlacer;

impl Placer for PackLocalPlacer {
    fn label(&self) -> &'static str {
        "pack_local"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        for &app in admitted {
            let Some(info) = view.app(app) else { continue };
            let tids: Vec<_> = info
                .threads
                .iter()
                .copied()
                .filter(|&t| view.thread(t).is_some_and(|t| t.is_runnable()))
                .collect();
            if tids.is_empty() {
                continue;
            }
            let free_in = |s: usize| {
                (0..view.num_cpus)
                    .filter(|&c| free[c] && view.socket_of(CpuId(c)) == s)
                    .count()
            };
            let home = tids.iter().find_map(|&t| view.home_socket(t));
            let target = home
                .filter(|&s| free_in(s) >= tids.len())
                .or_else(|| (0..view.sockets).max_by_key(|&s| (free_in(s), std::cmp::Reverse(s))))
                .unwrap_or(0);
            for &tid in &tids {
                let cpu = (0..view.num_cpus)
                    .find(|&c| free[c] && view.socket_of(CpuId(c)) == target)
                    .or_else(|| free.iter().position(|&f| f));
                if let Some(c) = cpu {
                    free[c] = false;
                    assignments.push(Assignment {
                        thread: tid,
                        cpu: CpuId(c),
                    });
                }
            }
        }
        assignments
    }
}

/// Socket-aware load spreading: after the affinity pass, each remaining
/// thread goes to the lowest free cpu on the socket with the most free
/// cpus (lowest socket breaks ties) — balancing bus masters across local
/// buses the way [`ScatterPlacer`] balances siblings across cores.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpreadSocketsPlacer;

impl Placer for SpreadSocketsPlacer {
    fn label(&self) -> &'static str {
        "spread_sockets"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let pending = affinity_pass(view, admitted, &mut free, &mut assignments);
        for tid in pending {
            let free_in = |s: usize| {
                (0..view.num_cpus)
                    .filter(|&c| free[c] && view.socket_of(CpuId(c)) == s)
                    .count()
            };
            let target = (0..view.sockets).max_by_key(|&s| (free_in(s), std::cmp::Reverse(s)));
            let cpu = target.and_then(|s| {
                (0..view.num_cpus).find(|&c| free[c] && view.socket_of(CpuId(c)) == s)
            });
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

/// Saturation-reactive placement: threads stay on their last cpu while
/// its socket's local bus keeps up, and migrate to the least-utilized
/// socket with a free cpu once it saturates. Reads the per-level bus
/// state of the previous arbitration ([`MachineView::bus_levels`] — the
/// simulated analogue of per-socket uncore counters); on a single-level
/// bus the levels are empty, no socket ever reads as saturated, and this
/// degenerates to affinity-then-lowest-free placement.
#[derive(Debug, Default, Clone, Copy)]
pub struct MigrateOnSaturationPlacer;

impl Placer for MigrateOnSaturationPlacer {
    fn label(&self) -> &'static str {
        "migrate"
    }

    fn place(&mut self, ctx: &StageCtx<'_, '_>, admitted: &[AppId]) -> Vec<Assignment> {
        let view = ctx.view;
        let saturated = |s: usize| view.bus_levels.get(s).is_some_and(|l| l.saturated);
        let utilization = |s: usize| view.bus_levels.get(s).map_or(0.0, |l| l.utilization);
        let mut free: Vec<bool> = vec![true; view.num_cpus];
        let mut assignments = Vec::new();
        let mut pending = Vec::new();
        for &app in admitted {
            let Some(info) = view.app(app) else { continue };
            for &tid in info.threads {
                let Some(t) = view.thread(tid) else { continue };
                if !t.is_runnable() {
                    continue;
                }
                // Stay put while the local bus keeps up.
                match t.last_cpu {
                    Some(c) if free[c.0] && !saturated(view.socket_of(c)) => {
                        free[c.0] = false;
                        assignments.push(Assignment {
                            thread: tid,
                            cpu: c,
                        });
                    }
                    _ => pending.push(tid),
                }
            }
        }
        for tid in pending {
            let target = (0..view.sockets)
                .filter(|&s| (0..view.num_cpus).any(|c| free[c] && view.socket_of(CpuId(c)) == s))
                .min_by(|&a, &b| utilization(a).total_cmp(&utilization(b)).then(a.cmp(&b)));
            let cpu = target.and_then(|s| {
                (0..view.num_cpus).find(|&c| free[c] && view.socket_of(CpuId(c)) == s)
            });
            if let Some(c) = cpu {
                free[c] = false;
                assignments.push(Assignment {
                    thread: tid,
                    cpu: CpuId(c),
                });
            }
        }
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busbw_sim::{AppDescriptor, ConstantDemand, Machine, ThreadSpec, XEON_4WAY, XEON_4WAY_HT};
    use busbw_trace::EventBus;

    fn machine(cfg: busbw_sim::MachineConfig, widths: &[usize]) -> (Machine, Vec<AppId>) {
        let mut m = Machine::new(cfg);
        let ids = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let threads = (0..w)
                    .map(|_| {
                        ThreadSpec::new(f64::INFINITY, Box::new(ConstantDemand::new(1.0, 0.2)))
                    })
                    .collect();
                m.add_app(AppDescriptor::new(format!("a{i}"), threads))
            })
            .collect();
        (m, ids)
    }

    fn place(p: &mut dyn Placer, m: &Machine, admitted: &[AppId]) -> Vec<Assignment> {
        let view = m.view();
        let bus = EventBus::off();
        let ctx = StageCtx {
            view: &view,
            tracer: &bus,
        };
        p.place(&ctx, admitted)
    }

    #[test]
    fn packed_fills_lowest_cpus_first() {
        let (m, ids) = machine(XEON_4WAY, &[2]);
        let a = place(&mut PackedPlacer, &m, &ids);
        let mut cpus: Vec<usize> = a.iter().map(|x| x.cpu.0).collect();
        cpus.sort();
        assert_eq!(cpus, vec![0, 1]);
    }

    #[test]
    fn smt_aware_spreads_a_pair_across_idle_cores() {
        // 8 hardware threads, 4 cores (siblings 0-1, 2-3, ...): a 2-thread
        // gang must land on two different cores, not cpu 0 and 1.
        let (m, ids) = machine(XEON_4WAY_HT, &[2]);
        let a = place(&mut SmtAwarePlacer, &m, &ids);
        assert_eq!(a.len(), 2);
        let v = m.view();
        assert_ne!(
            v.core_of(a[0].cpu),
            v.core_of(a[1].cpu),
            "siblings shared a core: {a:?}"
        );
    }

    #[test]
    fn scatter_balances_threads_over_cores() {
        let (m, ids) = machine(XEON_4WAY_HT, &[4]);
        let a = place(&mut ScatterPlacer, &m, &ids);
        assert_eq!(a.len(), 4);
        let v = m.view();
        let mut cores: Vec<usize> = a.iter().map(|x| v.core_of(x.cpu)).collect();
        cores.sort();
        cores.dedup();
        assert_eq!(cores.len(), 4, "4 threads should land on 4 cores: {a:?}");
    }

    #[test]
    fn placers_never_double_book_a_cpu() {
        let (m, ids) = machine(XEON_4WAY, &[2, 2]);
        for p in [
            &mut PackedPlacer as &mut dyn Placer,
            &mut ScatterPlacer,
            &mut SmtAwarePlacer,
            &mut PackLocalPlacer,
            &mut SpreadSocketsPlacer,
            &mut MigrateOnSaturationPlacer,
        ] {
            let a = place(p, &m, &ids);
            let mut cpus: Vec<usize> = a.iter().map(|x| x.cpu.0).collect();
            cpus.sort();
            cpus.dedup();
            assert_eq!(cpus.len(), a.len(), "double-booked cpu");
        }
    }

    /// Two sockets of four cpus each.
    fn two_socket_cfg() -> busbw_sim::MachineConfig {
        busbw_sim::MachineConfig {
            num_cpus: 8,
            topology: busbw_sim::TopologyConfig::multi(2),
            ..XEON_4WAY
        }
    }

    #[test]
    fn pack_local_keeps_a_gang_on_one_socket() {
        let (m, ids) = machine(two_socket_cfg(), &[4, 3]);
        let a = place(&mut PackLocalPlacer, &m, &ids);
        assert_eq!(a.len(), 7);
        let v = m.view();
        let sockets = |app: usize| -> Vec<usize> {
            let threads = v.app(ids[app]).unwrap().threads.to_vec();
            a.iter()
                .filter(|x| threads.contains(&x.thread))
                .map(|x| v.socket_of(x.cpu))
                .collect()
        };
        // The 4-wide gang fills socket 0; the 3-wide gang must go to
        // socket 1 whole rather than straddle.
        assert!(sockets(0).iter().all(|&s| s == 0), "{a:?}");
        assert!(sockets(1).iter().all(|&s| s == 1), "{a:?}");
    }

    #[test]
    fn spread_sockets_balances_threads_across_sockets() {
        let (m, ids) = machine(two_socket_cfg(), &[4]);
        let a = place(&mut SpreadSocketsPlacer, &m, &ids);
        assert_eq!(a.len(), 4);
        let v = m.view();
        let on0 = a.iter().filter(|x| v.socket_of(x.cpu) == 0).count();
        assert_eq!(on0, 2, "expected a 2/2 split: {a:?}");
    }

    #[test]
    fn migrate_placer_stays_put_until_the_local_bus_saturates() {
        // Four streamers packed on socket 0 saturate its local bus
        // (4 × 12 tx/µs vs ~26 effective). After a quantum the levels
        // show it; the migrate placer must then move threads off while
        // a fresh idle machine would have kept them in place.
        let mk = || {
            let mut m = Machine::new(two_socket_cfg());
            let ids: Vec<AppId> = (0..4)
                .map(|i| {
                    m.add_app(AppDescriptor::new(
                        format!("s{i}"),
                        vec![ThreadSpec::new(
                            f64::INFINITY,
                            Box::new(ConstantDemand::new(12.0, 0.9)),
                        )],
                    ))
                })
                .collect();
            (m, ids)
        };
        let (mut m, ids) = mk();
        let packed = Assignment {
            thread: m.view().app(ids[0]).unwrap().threads[0],
            cpu: CpuId(0),
        };
        let all_packed: Vec<Assignment> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| Assignment {
                thread: m.view().app(id).unwrap().threads[0],
                cpu: CpuId(i),
            })
            .collect();
        let _ = packed;
        let d = busbw_sim::Decision {
            assignments: all_packed,
            next_resched_in_us: 100_000,
            sample_period_us: None,
        };
        let _ = m.run(
            &mut busbw_sim::testkit::Replay::new(d),
            busbw_sim::StopCondition::At(100_000),
        );
        let v = m.view();
        assert!(v.bus_levels[0].saturated, "socket 0 should be saturated");
        assert!(!v.bus_levels[1].saturated);
        let bus = EventBus::off();
        let ctx = StageCtx {
            view: &v,
            tracer: &bus,
        };
        let a = MigrateOnSaturationPlacer.place(&ctx, &ids);
        assert_eq!(a.len(), 4);
        let moved = a.iter().filter(|x| v.socket_of(x.cpu) == 1).count();
        assert!(
            moved > 0,
            "no thread migrated off the saturated socket: {a:?}"
        );

        // Unsaturated machine: everyone keeps their last cpu.
        let (m2, ids2) = machine(two_socket_cfg(), &[2]);
        let ctx2view = m2.view();
        let ctx2 = StageCtx {
            view: &ctx2view,
            tracer: &bus,
        };
        let a2 = MigrateOnSaturationPlacer.place(&ctx2, &ids2);
        assert_eq!(a2.len(), 2);
        assert!(a2.iter().all(|x| ctx2view.socket_of(x.cpu) == 0));
    }
}
