//! Integration: the user-level CPU manager with real OS threads,
//! exercising the full §4 system — protocol, arenas, gates, selection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use busbw::core::estimator::{LatestQuantumEstimator, QuantaWindowEstimator};
use busbw::core::manager::{AppRuntime, CpuManager, ManagerConfig, ManagerHandle, Signal};

fn manager(num_cpus: usize) -> (CpuManager, ManagerHandle) {
    CpuManager::new(
        ManagerConfig {
            num_cpus,
            ..ManagerConfig::default()
        },
        Box::new(QuantaWindowEstimator::new()),
    )
}

fn connect(m: &mut CpuManager, h: &ManagerHandle, name: &str) -> AppRuntime {
    let pending = AppRuntime::request_connect(h, name).expect("manager alive");
    m.pump();
    pending.complete().expect("manager alive")
}

#[test]
fn manager_pairs_heavy_with_light_via_arena_rates() {
    let (mut m, h) = manager(4);
    let mut heavy1 = connect(&mut m, &h, "heavy1");
    let mut heavy2 = connect(&mut m, &h, "heavy2");
    let mut light = connect(&mut m, &h, "light");
    // Each app registers two worker threads; keep the handles so the test
    // can generate the counter traffic the run-time library would see.
    let h1 = (
        heavy1.register_thread().expect("manager alive"),
        heavy1.register_thread().expect("manager alive"),
    );
    let h2 = (
        heavy2.register_thread().expect("manager alive"),
        heavy2.register_thread().expect("manager alive"),
    );
    let hl = (
        light.register_thread().expect("manager alive"),
        light.register_thread().expect("manager alive"),
    );
    m.pump();

    // Simulate the run-time library: count transactions at each job's
    // nominal rate, publish to the arena every quantum, and let the
    // manager sample + select. After warm-up the two heavy jobs must not
    // be co-scheduled (4 cpus: one heavy pairs with the light job).
    let interval_us = 200_000u64;
    let mut co_scheduled_heavy = 0;
    for q in 1..=10u64 {
        for (app, handles, rate) in [
            (&mut heavy1, &h1, 22.0f64),
            (&mut heavy2, &h2, 22.0),
            (&mut light, &hl, 0.02),
        ] {
            let tx_per_thread = (rate * interval_us as f64 / 2.0) as u64;
            handles.0.count_transactions(tx_per_thread);
            handles.1.count_transactions(tx_per_thread);
            app.publish_sample(q * interval_us);
        }
        m.sample();
        let sel = m.quantum();
        if q > 3 && sel.contains(&heavy1.id()) && sel.contains(&heavy2.id()) {
            co_scheduled_heavy += 1;
        }
    }
    assert_eq!(
        co_scheduled_heavy, 0,
        "heavy jobs co-scheduled after warmup"
    );
}

#[test]
fn blocked_workers_park_and_released_workers_progress() {
    let (mut m, h) = manager(2);
    let mut a = connect(&mut m, &h, "a");
    let mut b = connect(&mut m, &h, "b");
    let ta = a.register_thread().expect("manager alive");
    let tb = b.register_thread().expect("manager alive");
    m.pump();

    let stop = Arc::new(AtomicBool::new(false));
    let pa = Arc::new(AtomicU64::new(0));
    let pb = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for (th, prog) in [(ta.clone(), pa.clone()), (tb.clone(), pb.clone())] {
        let stop = stop.clone();
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                prog.fetch_add(1, Ordering::Relaxed);
                th.checkpoint();
                std::thread::sleep(Duration::from_micros(100));
            }
        }));
    }

    // Both fit on 2 cpus: both run.
    let sel = m.quantum();
    assert_eq!(sel.len(), 2);
    std::thread::sleep(Duration::from_millis(50));
    assert!(pa.load(Ordering::Relaxed) > 0);
    assert!(pb.load(Ordering::Relaxed) > 0);

    // Manually block `b` through its gate (as the manager would if a
    // wider job arrived) and verify it parks.
    tb.gate().deliver(Signal::Block);
    std::thread::sleep(Duration::from_millis(30));
    let before = pb.load(Ordering::Relaxed);
    std::thread::sleep(Duration::from_millis(60));
    let after = pb.load(Ordering::Relaxed);
    assert!(
        after - before <= 1,
        "blocked worker advanced {before}->{after}"
    );

    tb.gate().deliver(Signal::Unblock);
    std::thread::sleep(Duration::from_millis(60));
    assert!(pb.load(Ordering::Relaxed) > after, "unblocked worker stuck");

    stop.store(true, Ordering::SeqCst);
    // Ensure nobody is parked at exit.
    ta.gate().deliver(Signal::Unblock);
    tb.gate().deliver(Signal::Unblock);
    for w in workers {
        w.join().unwrap();
    }
    a.thread_exited();
    b.thread_exited();
    a.disconnect();
    b.disconnect();
    m.pump();
    assert!(m.job_names().is_empty());
}

#[test]
fn estimator_choice_is_pluggable_at_manager_level() {
    // Same protocol flow works for the Latest Quantum estimator.
    let (mut m, h) = CpuManager::new(
        ManagerConfig {
            num_cpus: 2,
            ..ManagerConfig::default()
        },
        Box::new(LatestQuantumEstimator::new()),
    );
    let mut a = connect(&mut m, &h, "a");
    a.register_thread().expect("manager alive");
    m.pump();
    let sel = m.quantum();
    assert_eq!(sel, vec![a.id()]);
}

#[test]
fn realtime_manager_loop_runs_and_shuts_down() {
    // Exercise run_realtime for a few quanta with a connected app.
    let (m, h) = manager(2);
    let stop = Arc::new(AtomicBool::new(false));
    let mgr = {
        let stop = stop.clone();
        std::thread::spawn(move || m.run_realtime(stop))
    };
    // connect() needs the manager pumping — it is, on its own thread.
    let mut app = AppRuntime::connect(&h, "rt").expect("manager alive");
    let th = app.register_thread().expect("manager alive");
    for i in 1..=4u64 {
        th.count_transactions(1000);
        app.publish_sample(i * 50_000);
        std::thread::sleep(Duration::from_millis(30));
    }
    stop.store(true, Ordering::SeqCst);
    mgr.join().expect("manager thread");
    app.disconnect();
}
