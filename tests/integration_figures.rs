//! Reduced-scale shape checks of the paper's figures, end to end through
//! the experiment harness. (Full-scale regeneration is done by the
//! `experiments` binary and the benches; these run at 1/10 scale so the
//! whole file stays test-suite friendly.)

use busbw::metrics::improvement_pct;
use busbw::workloads::mix;
use busbw::workloads::paper::PaperApp;
use busbw_experiments::runner::{run_spec, solo_turnaround_us, PolicyKind, RunnerConfig};
use busbw_experiments::Fig2Set;

fn rc() -> RunnerConfig {
    RunnerConfig {
        scale: 0.1,
        ..RunnerConfig::default()
    }
}

#[test]
fn fig1a_shape_rates_track_calibration_and_saturate_with_bbma() {
    let rc = rc();
    // Solo rates increase along the Figure 1A ordering.
    let mut prev = 0.0;
    for app in [
        PaperApp::Radiosity,
        PaperApp::Fmm,
        PaperApp::Bt,
        PaperApp::Cg,
    ] {
        let r = run_spec(&mix::fig1_solo(app), PolicyKind::Linux, &rc);
        assert!(
            r.measured_apps_rate > prev,
            "{}: rate {} not increasing",
            app.name(),
            r.measured_apps_rate
        );
        prev = r.measured_apps_rate;
    }
    // Every BBMA mix pushes the whole workload near the sustained limit.
    for app in [PaperApp::Radiosity, PaperApp::Cg] {
        let r = run_spec(&mix::fig1_with_bbma(app), PolicyKind::Linux, &rc);
        assert!(
            r.workload_rate > 25.0,
            "{}: BBMA workload rate {}",
            app.name(),
            r.workload_rate
        );
    }
}

#[test]
fn fig1b_shape_heavy_apps_suffer_and_nbbma_is_free() {
    let rc = rc();
    let solo = solo_turnaround_us(PaperApp::Mg, &rc);
    let two = run_spec(
        &mix::fig1_two_instances(PaperApp::Mg),
        PolicyKind::Linux,
        &rc,
    );
    let bbma = run_spec(&mix::fig1_with_bbma(PaperApp::Mg), PolicyKind::Linux, &rc);
    let nbbma = run_spec(&mix::fig1_with_nbbma(PaperApp::Mg), PolicyKind::Linux, &rc);
    let s2 = two.mean_turnaround_us / solo;
    let sb = bbma.mean_turnaround_us / solo;
    let sn = nbbma.mean_turnaround_us / solo;
    // Paper: heavy apps lose 41–61 % against a second instance, 2–3×
    // against BBMA, and nothing against nBBMA.
    assert!((1.25..1.8).contains(&s2), "2-instance slowdown {s2}");
    assert!((1.7..3.2).contains(&sb), "BBMA slowdown {sb}");
    assert!((0.95..1.1).contains(&sn), "nBBMA slowdown {sn}");
    assert!(sb > s2, "BBMA must hurt more than a second instance");
}

#[test]
fn fig2_shape_policies_win_on_heavy_apps_in_every_set() {
    let rc = rc();
    for set in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
        let spec = set.spec(PaperApp::Cg);
        let linux = run_spec(&spec, PolicyKind::Linux, &rc);
        for p in [PolicyKind::Latest, PolicyKind::Window] {
            let r = run_spec(&spec, p, &rc);
            let imp = improvement_pct(linux.mean_turnaround_us, r.mean_turnaround_us);
            assert!(imp > 0.0, "{:?} {} on CG: {imp:.1}%", set, p.label());
        }
    }
}

#[test]
fn fig2_summary_magnitudes_are_in_the_papers_band() {
    // Spot-check two applications per set instead of all 11 (time).
    let rc = rc();
    let mut imps = Vec::new();
    for set in [Fig2Set::A, Fig2Set::B, Fig2Set::C] {
        for app in [PaperApp::Volrend, PaperApp::Mg] {
            let spec = set.spec(app);
            let linux = run_spec(&spec, PolicyKind::Linux, &rc);
            let w = run_spec(&spec, PolicyKind::Window, &rc);
            imps.push(improvement_pct(
                linux.mean_turnaround_us,
                w.mean_turnaround_us,
            ));
        }
    }
    let mean = imps.iter().sum::<f64>() / imps.len() as f64;
    // Paper: averages 21–31 % per set (26 % overall); shape tolerance wide.
    assert!(
        (8.0..45.0).contains(&mean),
        "mean Window improvement {mean:.1}% across spot checks ({imps:?})"
    );
}

#[test]
fn ablation_fitness_beats_round_robin_gang_in_aggregate() {
    // Any single cell can go either way (both are gang schedulers with
    // rotation); the fitness rule's value shows in aggregate across
    // workloads — assert the geometric-mean speedup over three cells.
    let rc = rc();
    let mut log_ratio = 0.0;
    let cells = [
        (Fig2Set::B, PaperApp::Raytrace),
        (Fig2Set::B, PaperApp::Cg),
        (Fig2Set::C, PaperApp::Mg),
    ];
    for (set, app) in cells {
        let spec = set.spec(app);
        let rr = run_spec(&spec, PolicyKind::RoundRobinGang, &rc);
        let window = run_spec(&spec, PolicyKind::Window, &rc);
        log_ratio += (rr.mean_turnaround_us / window.mean_turnaround_us).ln();
    }
    let geo = (log_ratio / cells.len() as f64).exp();
    assert!(
        geo > 1.02,
        "fitness should beat round-robin gang in aggregate: geo-mean speedup {geo:.3}"
    );
}
