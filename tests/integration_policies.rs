//! Cross-crate integration: workloads → simulator → policies → metrics.

use busbw::core::{latest_quantum, linux_like, quanta_window};
use busbw::perfmon::EventKind;
use busbw::sim::{Machine, Scheduler, StopCondition, ThreadState, XEON_4WAY};
use busbw::workloads::{mix, paper::PaperApp};

fn run_set_c(app: PaperApp, mut sched: Box<dyn Scheduler>, seed: u64) -> (Machine, Vec<f64>) {
    let spec = mix::fig2_set_c(app).scaled(0.1);
    let built = mix::build_machine(&spec, XEON_4WAY, seed);
    let mut machine = built.machine;
    let out = machine.run(
        &mut *sched,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met, "run hit the hard cap");
    let ts = built
        .measured_ids
        .iter()
        .map(|&id| machine.turnaround_us(id).unwrap() as f64)
        .collect();
    (machine, ts)
}

#[test]
fn both_policies_beat_linux_on_a_heavy_set_c_workload() {
    let (_, linux) = run_set_c(PaperApp::Cg, Box::new(linux_like()), 42);
    let (_, latest) = run_set_c(PaperApp::Cg, Box::new(latest_quantum()), 42);
    let (_, window) = run_set_c(PaperApp::Cg, Box::new(quanta_window()), 42);
    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&latest) < mean(&linux),
        "Latest {} vs Linux {}",
        mean(&latest),
        mean(&linux)
    );
    assert!(
        mean(&window) < mean(&linux),
        "Window {} vs Linux {}",
        mean(&window),
        mean(&linux)
    );
}

#[test]
fn full_run_is_deterministic_across_invocations() {
    let (_, a) = run_set_c(PaperApp::Raytrace, Box::new(latest_quantum()), 7);
    let (_, b) = run_set_c(PaperApp::Raytrace, Box::new(latest_quantum()), 7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_bursty_workload_outcomes() {
    let (_, a) = run_set_c(PaperApp::Raytrace, Box::new(latest_quantum()), 1);
    let (_, b) = run_set_c(PaperApp::Raytrace, Box::new(latest_quantum()), 2);
    assert_ne!(a, b, "burst seeds should alter the schedule");
}

#[test]
fn counters_account_for_all_bus_traffic() {
    // The registry's machine-wide transaction total must equal the
    // bus-level accounting within numerical noise.
    let spec = mix::fig1_with_bbma(PaperApp::Mg).scaled(0.1);
    let built = mix::build_machine(&spec, XEON_4WAY, 3);
    let mut machine = built.machine;
    let mut sched = linux_like();
    let out = machine.run(
        &mut sched,
        StopCondition::AppsFinished(built.measured_ids.clone()),
    );
    assert!(out.condition_met);
    let from_registry = machine.registry().machine_total(EventKind::BusTransactions);
    let from_bus = out.stats.bus.total_transactions;
    let rel = (from_registry - from_bus).abs() / from_bus;
    assert!(rel < 0.01, "registry {from_registry} vs bus {from_bus}");
}

#[test]
fn gang_policies_never_split_an_application() {
    // Observe thread states during a run driven by the Window policy:
    // whenever one thread of a 2-wide app is Running, its sibling must be
    // Running too (they are placed by the same decision).
    let spec = mix::fig2_set_b(PaperApp::Sp).scaled(0.05);
    let built = mix::build_machine(&spec, XEON_4WAY, 5);
    let mut machine = built.machine;
    let mut sched = quanta_window();
    // Advance quantum by quantum and check the invariant at boundaries.
    for _ in 0..20 {
        let d = sched.schedule(&machine.view());
        let mut per_app = std::collections::BTreeMap::new();
        for a in &d.assignments {
            let t = machine.view().thread(a.thread).unwrap();
            *per_app.entry(t.app).or_insert(0usize) += 1;
        }
        for (app, n) in per_app {
            let width = machine.view().app(app).unwrap().width();
            assert_eq!(n, width, "gang {app} split: {n}/{width} threads placed");
        }
        machine.run(
            &mut busbw::sim::testkit::Replay::new(d),
            StopCondition::At(machine.now() + 200_000),
        );
    }
    // Sanity: no thread should be left permanently unscheduled.
    let v = machine.view();
    for t in v.threads() {
        if t.state != ThreadState::Finished {
            let cyc = v.registry.total(t.id.key(), EventKind::CyclesOnCpu);
            assert!(cyc > 0.0, "thread {} never ran", t.id);
        }
    }
}

#[test]
fn nbbma_background_is_harmless_and_bbma_background_is_not() {
    // Fig. 1 shape at integration level, FMM as a moderate app.
    let solo = {
        let spec = mix::fig1_solo(PaperApp::Fmm).scaled(0.1);
        let built = mix::build_machine(&spec, XEON_4WAY, 11);
        let mut m = built.machine;
        let mut s = linux_like();
        m.run(
            &mut s,
            StopCondition::AppsFinished(built.measured_ids.clone()),
        );
        m.turnaround_us(built.measured_ids[0]).unwrap() as f64
    };
    let with = |mk: fn(PaperApp) -> busbw::workloads::WorkloadSpec| {
        let spec = mk(PaperApp::Fmm).scaled(0.1);
        let built = mix::build_machine(&spec, XEON_4WAY, 11);
        let mut m = built.machine;
        let mut s = linux_like();
        m.run(
            &mut s,
            StopCondition::AppsFinished(built.measured_ids.clone()),
        );
        m.turnaround_us(built.measured_ids[0]).unwrap() as f64
    };
    let nbbma = with(mix::fig1_with_nbbma);
    let bbma = with(mix::fig1_with_bbma);
    assert!(
        (0.95..1.08).contains(&(nbbma / solo)),
        "nBBMA slowdown {}",
        nbbma / solo
    );
    assert!(
        bbma / solo > 1.15,
        "BBMA should visibly slow FMM: {}",
        bbma / solo
    );
}
