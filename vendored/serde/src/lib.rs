//! Vendored serde facade for offline builds.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! types but never invokes a serializer, so the derives are structural
//! no-ops and no trait machinery is required. The `derive` feature is
//! accepted (and ignored) for manifest compatibility.

pub use serde_derive::{Deserialize, Serialize};
