//! Vendored stand-in for `criterion`: a wall-clock benchmark harness with
//! the same macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `Bencher::iter`).
//!
//! Measurement model: per benchmark, one untimed warm-up call, then up to
//! `sample_size` timed samples bounded by a global per-benchmark time
//! budget. Sub-microsecond closures are auto-batched until a sample spans
//! at least ~10 µs so timer resolution does not dominate. Results are
//! printed as `name  time: [min mean max]` — no plots, no statistics
//! beyond the basics, no baseline files.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const SAMPLE_FLOOR: Duration = Duration::from_micros(10);
const BENCH_BUDGET: Duration = Duration::from_secs(2);

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks by name, like
        // the real harness.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Self {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Builder-style default sample count for subsequent benchmarks.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let n = self.sample_size;
        self.run_one(&id, n, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, sample_size: usize, mut f: F) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        };
        f(&mut b);
        b.report(name);
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sample count for benchmarks registered after this call.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Run `f` as benchmark `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&full, n, f);
        self
    }

    /// Run `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, auto-batching fast closures.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed

        // Calibrate: how many calls does one ≥10 µs sample need?
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= SAMPLE_FLOOR || batch >= 1 << 20 {
                self.samples.push(dt.as_secs_f64() / batch as f64);
                break;
            }
            batch *= 8;
        }

        let budget_end = Instant::now() + BENCH_BUDGET;
        while self.samples.len() < self.sample_size && Instant::now() < budget_end {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(0.0, f64::max);
        let mean = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<60} time: [{} {} {}]",
            fmt_secs(min),
            fmt_secs(mean),
            fmt_secs(max)
        );
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.2} ns", s * 1e9)
    }
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_for_fast_closures() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn group_and_id_compose_names() {
        let id = BenchmarkId::new("solve", 8);
        assert_eq!(id.0, "solve/8");
        let mut c = Criterion {
            sample_size: 3,
            filter: Some("never-matches-anything".into()),
        };
        // Filtered out: closure must not run.
        let mut g = c.benchmark_group("g");
        g.bench_function("x", |_b| panic!("should be filtered"));
        g.finish();
    }
}
