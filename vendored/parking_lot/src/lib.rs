//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! API differences papered over:
//! * `Mutex::lock` returns the guard directly (no `Result`); poisoning is
//!   swallowed with `PoisonError::into_inner`, matching parking_lot's
//!   poison-free behaviour.
//! * `Condvar::wait(&mut guard)` mutates the guard in place rather than
//!   consuming it, so the guard wraps an `Option` internally.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard; the `Option` lets [`Condvar::wait`] re-acquire in place.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's in-place guard signatures.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing and re-acquiring `guard`'s lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let reacquired = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(reacquired);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (reacquired, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);
    }
}
