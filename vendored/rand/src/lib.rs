//! Vendored stand-in for `rand` 0.8, covering the API surface the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! float/integer ranges, and `Rng::gen_bool`.
//!
//! The generator is SplitMix64 — not the real StdRng (ChaCha12), but the
//! workspace only requires *deterministic, well-mixed* streams per seed,
//! never bit-compatibility with upstream rand.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64 uniform bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point (`StdRng::seed_from_u64(s)`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive,
    /// float or integer).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&i));
            let u = r.gen_range(0u64..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..50).all(|_| r.gen_bool(1.0)));
        assert!(!(0..50).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
