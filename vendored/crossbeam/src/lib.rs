//! Vendored stand-in for `crossbeam`: only the `channel` module, backed by
//! `std::sync::mpsc`. The manager uses single-consumer topologies, so mpsc
//! semantics are sufficient; error types are re-used from std.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// Sending half (clonable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterate over messages until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, [1, 2]);
    }
}
