//! Vendored stand-in for the `bytes` crate: just the little-endian
//! cursor-style accessors the shared-arena code uses, implemented over
//! plain slices. Reads and writes advance the slice in place, matching
//! upstream `Buf for &[u8]` / `BufMut for &mut [u8]` semantics.

/// Sequential little-endian reads that consume the front of the buffer.
pub trait Buf {
    /// Read and consume 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Read and consume 8 bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Read and consume 8 bytes as a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Sequential little-endian writes that consume the front of the buffer.
pub trait BufMut {
    /// Write 4 bytes as a little-endian `u32` and advance.
    fn put_u32_le(&mut self, v: u32);
    /// Write 8 bytes as a little-endian `u64` and advance.
    fn put_u64_le(&mut self, v: u64);
    /// Write 8 bytes as a little-endian `f64` and advance.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().expect("8 bytes"))
    }
}

impl BufMut for &mut [u8] {
    fn put_u32_le(&mut self, v: u32) {
        let taken = std::mem::take(self);
        let (head, rest) = taken.split_at_mut(4);
        head.copy_from_slice(&v.to_le_bytes());
        *self = rest;
    }

    fn put_u64_le(&mut self, v: u64) {
        let taken = std::mem::take(self);
        let (head, rest) = taken.split_at_mut(8);
        head.copy_from_slice(&v.to_le_bytes());
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_fields() {
        let mut page = [0u8; 64];
        let mut w: &mut [u8] = &mut page[..];
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(-1.5);
        let mut r: &[u8] = &page[..];
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.5);
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2][..];
        let _ = r.get_u32_le();
    }
}
