//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace only uses serde derives as structural annotations (no
//! serializer is ever instantiated), so the offline stand-in emits no code.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
