//! Vendored stand-in for `proptest`: a seeded, non-shrinking property
//! runner covering the API surface the workspace uses — `proptest!` with
//! optional `proptest_config`, range/tuple strategies, `prop_map`,
//! `prop_flat_map`, `collection::vec`, `sample::subsequence`, `any::<T>()`
//! and the `prop_assert*` macros.
//!
//! Generation is deterministic: each test's stream is seeded from a hash
//! of its name, so failures reproduce across runs. There is no shrinking —
//! a failing case panics with the values visible in the assert message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so every property has its own
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A value generator. The object-unsafe subset of proptest's trait the
/// workspace relies on, with `generate` in place of value trees.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Size specifications accepted by [`collection::vec`] and
/// [`sample::subsequence`]: a fixed size, `lo..hi`, or `lo..=hi`.
pub trait IntoSizeRange {
    /// Inclusive `(lo, hi)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};

    /// Strategy for vectors of `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{IntoSizeRange, Strategy, TestRng};

    /// Strategy for order-preserving subsequences of `values` whose
    /// length falls in `size`.
    pub fn subsequence<T: Clone>(
        values: Vec<T>,
        size: impl IntoSizeRange,
    ) -> SubsequenceStrategy<T> {
        let (lo, hi) = size.bounds();
        assert!(
            hi <= values.len(),
            "subsequence size {hi} exceeds {} values",
            values.len()
        );
        SubsequenceStrategy { values, lo, hi }
    }

    /// See [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct SubsequenceStrategy<T> {
        values: Vec<T>,
        lo: usize,
        hi: usize,
    }

    impl<T: Clone> Strategy for SubsequenceStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let k = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            // Partial Fisher-Yates over the index set, then restore order.
            let mut idx: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..k {
                let j = i + rng.below((idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            let mut chosen = idx[..k].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Define seeded property tests. Supports the upstream forms used here:
/// an optional leading `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` that names the property framework in its failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = (0u64..100, 0.0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = crate::TestRng::for_test("sub");
        let s = crate::sample::subsequence((0u64..10).collect::<Vec<_>>(), 2..=5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.windows(2).all(|w| w[0] < w[1]), "not ordered: {v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0i32..5, 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
            for x in v {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..6).prop_flat_map(|n| (Just(n), prop::collection::vec(0.0f64..1.0, n..=n))),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn any_bool_hits_both_values(bits in prop::collection::vec(any::<bool>(), 64usize)) {
            // 64 fair coins virtually never agree on one value.
            prop_assert!(bits.iter().any(|&b| b) || bits.iter().all(|&b| !b));
        }
    }
}
